//! The per-visit cost timeline: where one page load's time and bytes went.
//!
//! [`VisitTimeline`] is the contract between the browser's zero-allocation
//! visit fast path and the cost model: a fixed-size block of plain integer
//! counters that the loader bumps as the visit unfolds. It is `Copy`, owns no
//! heap memory and is reset (not reallocated) between visits, so accounting
//! rides the hot loop without disturbing the steady-state **zero heap
//! allocations** guarantee pinned by `crates/browser/tests/zero_alloc.rs`.
//!
//! Counts are link-independent (round trips, octets, queries); milliseconds
//! that the simulated clock actually charged during the visit (handshake
//! latency including loss retransmissions, and the resulting page-load time)
//! are recorded alongside, because per-connection integer rounding makes them
//! impossible to reproduce exactly from the totals afterwards.

use serde::{Deserialize, Serialize};

/// Fixed-size per-visit cost counters. All fields are totals over one page
/// visit; the aggregating side ([`crate::CostTotals`]) sums them across
/// visits and shards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VisitTimeline {
    /// DNS lookups answered from the resolver cache (free).
    pub dns_cache_hits: u64,
    /// DNS lookups that required a recursive walk to the authority.
    pub dns_recursive_walks: u64,
    /// Authority queries those walks performed (CNAME chains count each hop).
    pub dns_authority_queries: u64,
    /// Resolutions that failed (NXDOMAIN, empty answers, CNAME loops).
    pub dns_failures: u64,
    /// Connections the visit had to open.
    pub connections_opened: u64,
    /// Requests that rode an existing connection (pool hit or §9.1.1
    /// coalescing) instead of opening a new one.
    pub connections_reused: u64,
    /// Round trips spent in TCP + TLS handshakes across all opened
    /// connections (before loss retransmissions).
    pub handshake_rtts: u64,
    /// Octets spent on handshake frames (SYNs, hellos, certificate chains).
    pub handshake_octets: u64,
    /// Milliseconds the simulated clock actually charged for connection
    /// setup, including the loss-retransmission penalty.
    pub handshake_millis: u64,
    /// Exact expected loss-retransmission latency across the visit's
    /// connection setups, in **microseconds**. The clock charges the
    /// whole-millisecond prefix of the running per-visit sum (the loader's
    /// carry), so this field audits what the rounding kept: the visit's
    /// charged loss milliseconds are `loss_retransmit_micros / 1000`.
    pub loss_retransmit_micros: u64,
    /// Opened connections charged under the handshake config's
    /// session-resumption discount (fewer round trips, no certificate-chain
    /// flight). The model applies the discount per configuration, not per
    /// origin cache, so this audits *which tariff* the RTT/octet sums were
    /// computed under; the measurement presets reset caches between visits
    /// and therefore always record zero here.
    pub resumed_handshakes: u64,
    /// Extra round trips spent growing cold congestion windows: each opened
    /// connection pays the slow-start rounds its delivered bytes needed.
    pub cold_cwnd_rtts: u64,
    /// Requests the visit sent.
    pub requests: u64,
    /// Response body octets the visit received.
    pub body_octets: u64,
    /// Page-load time of the visit (first request to last response), in
    /// milliseconds of simulated time.
    pub plt_millis: u64,
    /// Faults the injection layer fired during the visit, over every process
    /// (DNS, TLS, reset, dead-on-reuse, GOAWAY).
    pub faults_injected: u64,
    /// Extra fetch attempts the retry policy spent recovering from faults
    /// (the first attempt of each resource is not counted).
    pub retries: u64,
    /// Milliseconds the simulated clock charged for retry backoff waits
    /// (exponential schedule plus deterministic jitter).
    pub retry_backoff_millis: u64,
    /// Resources abandoned after exhausting their retry budget — the
    /// degraded remainder a `VisitOutcome::Degraded` reports.
    pub failed_resources: u64,
    /// Server GOAWAY frames received mid-page (the connection finished its
    /// in-flight streams but accepted no new ones).
    pub goaways_received: u64,
    /// Pooled connections that turned out dead when the session lent them.
    pub dead_on_reuse: u64,
    /// Redundant connection dials raced by the hedged-request mitigation;
    /// each charged a second handshake's octets.
    pub hedged_dials: u64,
}

impl VisitTimeline {
    /// Reset every counter to zero (the between-visits recycle; no
    /// allocation, no reconstruction).
    pub fn reset(&mut self) {
        *self = VisitTimeline::default();
    }

    /// Component-wise sum — the shard-merge primitive [`crate::CostTotals`]
    /// is built on.
    pub fn absorb(&mut self, other: &VisitTimeline) {
        self.dns_cache_hits += other.dns_cache_hits;
        self.dns_recursive_walks += other.dns_recursive_walks;
        self.dns_authority_queries += other.dns_authority_queries;
        self.dns_failures += other.dns_failures;
        self.connections_opened += other.connections_opened;
        self.connections_reused += other.connections_reused;
        self.handshake_rtts += other.handshake_rtts;
        self.handshake_octets += other.handshake_octets;
        self.handshake_millis += other.handshake_millis;
        self.loss_retransmit_micros += other.loss_retransmit_micros;
        self.resumed_handshakes += other.resumed_handshakes;
        self.cold_cwnd_rtts += other.cold_cwnd_rtts;
        self.requests += other.requests;
        self.body_octets += other.body_octets;
        self.plt_millis += other.plt_millis;
        self.faults_injected += other.faults_injected;
        self.retries += other.retries;
        self.retry_backoff_millis += other.retry_backoff_millis;
        self.failed_resources += other.failed_resources;
        self.goaways_received += other.goaways_received;
        self.dead_on_reuse += other.dead_on_reuse;
        self.hedged_dials += other.hedged_dials;
    }

    /// Number of words in the fixed-width persistence layout.
    pub const WORDS: usize = 22;

    /// The fixed-width word layout the shard store persists. Field order is
    /// frozen (declaration order); appending a counter is a store schema
    /// bump, reordering is forbidden.
    pub fn to_words(&self) -> [u64; Self::WORDS] {
        [
            self.dns_cache_hits,
            self.dns_recursive_walks,
            self.dns_authority_queries,
            self.dns_failures,
            self.connections_opened,
            self.connections_reused,
            self.handshake_rtts,
            self.handshake_octets,
            self.handshake_millis,
            self.loss_retransmit_micros,
            self.resumed_handshakes,
            self.cold_cwnd_rtts,
            self.requests,
            self.body_octets,
            self.plt_millis,
            self.faults_injected,
            self.retries,
            self.retry_backoff_millis,
            self.failed_resources,
            self.goaways_received,
            self.dead_on_reuse,
            self.hedged_dials,
        ]
    }

    /// Rebuild from the fixed-width word layout.
    pub fn from_words(words: &[u64; Self::WORDS]) -> Self {
        VisitTimeline {
            dns_cache_hits: words[0],
            dns_recursive_walks: words[1],
            dns_authority_queries: words[2],
            dns_failures: words[3],
            connections_opened: words[4],
            connections_reused: words[5],
            handshake_rtts: words[6],
            handshake_octets: words[7],
            handshake_millis: words[8],
            loss_retransmit_micros: words[9],
            resumed_handshakes: words[10],
            cold_cwnd_rtts: words[11],
            requests: words[12],
            body_octets: words[13],
            plt_millis: words[14],
            faults_injected: words[15],
            retries: words[16],
            retry_backoff_millis: words[17],
            failed_resources: words[18],
            goaways_received: words[19],
            dead_on_reuse: words[20],
            hedged_dials: words[21],
        }
    }

    /// Total round trips attributable to connection setup: handshakes plus
    /// cold-congestion-window growth.
    pub fn setup_rtts(&self) -> u64 {
        self.handshake_rtts + self.cold_cwnd_rtts
    }

    /// Share of requests that reused an existing connection.
    pub fn reuse_share(&self) -> f64 {
        let total = self.connections_opened + self.connections_reused;
        if total == 0 {
            0.0
        } else {
            self.connections_reused as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(scale: u64) -> VisitTimeline {
        VisitTimeline {
            dns_cache_hits: 2 * scale,
            dns_recursive_walks: 3 * scale,
            dns_authority_queries: 4 * scale,
            dns_failures: scale,
            connections_opened: 5 * scale,
            connections_reused: 7 * scale,
            handshake_rtts: 10 * scale,
            handshake_octets: 9_000 * scale,
            handshake_millis: 300 * scale,
            loss_retransmit_micros: 450 * scale,
            resumed_handshakes: scale,
            cold_cwnd_rtts: 6 * scale,
            requests: 12 * scale,
            body_octets: 100_000 * scale,
            plt_millis: 800 * scale,
            faults_injected: 5 * scale,
            retries: 4 * scale,
            retry_backoff_millis: 700 * scale,
            failed_resources: scale,
            goaways_received: 2 * scale,
            dead_on_reuse: 3 * scale,
            hedged_dials: 8 * scale,
        }
    }

    #[test]
    fn absorb_is_component_wise_addition() {
        let mut total = sample(1);
        total.absorb(&sample(2));
        assert_eq!(total, sample(3));
        assert_eq!(total.setup_rtts(), 30 + 18);
    }

    #[test]
    fn reset_recycles_to_zero() {
        let mut timeline = sample(4);
        timeline.reset();
        assert_eq!(timeline, VisitTimeline::default());
        assert_eq!(timeline.reuse_share(), 0.0);
    }

    #[test]
    fn reuse_share_is_the_ride_along_fraction() {
        let timeline = sample(1);
        assert!((timeline.reuse_share() - 7.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn words_round_trip_and_cover_every_counter() {
        // Distinct value per word: a codec that drops or swaps any field
        // cannot round-trip this timeline.
        let words: [u64; VisitTimeline::WORDS] = std::array::from_fn(|index| 10_000 + index as u64);
        let timeline = VisitTimeline::from_words(&words);
        assert_eq!(timeline.to_words(), words);

        let sampled = sample(3);
        assert_eq!(VisitTimeline::from_words(&sampled.to_words()), sampled);
    }

    #[test]
    fn absorbing_decoded_words_equals_absorbing_live() {
        let mut live = sample(1);
        live.absorb(&sample(2));
        let mut decoded = VisitTimeline::from_words(&sample(1).to_words());
        decoded.absorb(&VisitTimeline::from_words(&sample(2).to_words()));
        assert_eq!(decoded, live);
    }
}
