//! Link profiles: the network conditions a crawl is priced under.
//!
//! A [`LinkProfile`] bundles the three path parameters the cost model needs —
//! round-trip time, downstream bandwidth and packet loss — into one named
//! knob. The presets mirror the environments the related work measures:
//!
//! * [`LinkProfile::datacenter`] — the vantage the paper's own crawl ran
//!   from: ~2 ms to well-peered servers, effectively loss-free.
//! * [`LinkProfile::broadband`] — a residential access link. RTT and
//!   bandwidth are deliberately identical to the browser substrate's
//!   historical defaults (30 ms, 6 000 bytes/ms). Its 0.1 % loss rate
//!   amounts to ~60 µs per two-round-trip setup — less than a whole
//!   millisecond per connection, which is why the penalty is computed in
//!   **microseconds** ([`loss_retransmit_extra_micros`]) and carried as a
//!   sub-millisecond remainder across a visit's connections instead of
//!   being truncated per call (per-call truncation charged broadband
//!   exactly zero on every setup, a free ride the aggregate loss tax
//!   inherited across millions of connections).
//! * [`LinkProfile::lossy_cellular`] — the lossy cellular path of Goel et
//!   al.: ~120 ms RTT, ~12 Mbit/s and 2 % packet loss, where every extra
//!   handshake hurts the most.
//!
//! Loss is carried as **parts per million** and the retransmission penalty
//! ([`loss_retransmit_extra`]) is pure integer arithmetic, so every derived
//! cost is bit-identical across machines and thread counts.

use netsim_types::Duration;
use serde::{Deserialize, Serialize};

/// Named RTT / bandwidth / loss parameters of one simulated network path.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkProfile {
    /// Human-readable preset name (report headings).
    pub name: String,
    /// Round-trip time to any server, in milliseconds.
    pub rtt_ms: u64,
    /// Downstream bandwidth in bytes per millisecond (~ kB/ms).
    pub bandwidth_bytes_per_ms: u64,
    /// Packet-loss probability in parts per million (20 000 = 2 %).
    pub loss_ppm: u32,
}

impl LinkProfile {
    /// Build a profile, rejecting unusable parameters.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bytes_per_ms` is zero. A zero-bandwidth link is
    /// always a misconfiguration — the transfer-time model divides by it —
    /// and masking it (the model once clamped the divisor to 1 at the point
    /// of use) silently turned every body into a multi-second transfer.
    /// Constructing the profile is where the mistake is visible; reject it
    /// there.
    pub fn new(name: &str, rtt_ms: u64, bandwidth_bytes_per_ms: u64, loss_ppm: u32) -> Self {
        assert!(
            bandwidth_bytes_per_ms > 0,
            "link profile {name:?} has zero bandwidth; bandwidth_bytes_per_ms must be positive"
        );
        LinkProfile { name: name.to_string(), rtt_ms, bandwidth_bytes_per_ms, loss_ppm }
    }

    /// A well-peered datacenter / university vantage: 2 ms, 1 Gbit/s, no
    /// loss.
    pub fn datacenter() -> Self {
        LinkProfile::new("datacenter", 2, 125_000, 0)
    }

    /// A residential broadband link — the browser substrate's historical
    /// defaults, so this preset reprices existing crawls without changing
    /// their behaviour.
    pub fn broadband() -> Self {
        LinkProfile::new("broadband", 30, 6_000, 1_000)
    }

    /// The lossy cellular path of Goel et al.: 120 ms, ~12 Mbit/s, 2 % loss.
    pub fn lossy_cellular() -> Self {
        LinkProfile::new("lossy-cellular", 120, 1_500, 20_000)
    }

    /// The three presets, in increasing order of per-connection pain.
    pub fn presets() -> Vec<LinkProfile> {
        vec![LinkProfile::datacenter(), LinkProfile::broadband(), LinkProfile::lossy_cellular()]
    }

    /// The round-trip time as a [`Duration`].
    pub fn rtt(&self) -> Duration {
        Duration::from_millis(self.rtt_ms)
    }

    /// Wall-clock time for `rtts` sequential round trips over this link,
    /// including the expected retransmission penalty of its loss rate.
    pub fn time_for_rtts(&self, rtts: u64) -> Duration {
        self.rtt().saturating_mul(rtts) + loss_retransmit_extra(self.rtt(), rtts, self.loss_ppm)
    }
}

/// Expected extra latency that packet loss adds to `rtts` sequential round
/// trips, in **microseconds**: each round trip is retried with probability
/// `p`, costing one more RTT, so the expected overhead is
/// `rtts × p / (1 − p)` round trips.
///
/// Computed in pure integer arithmetic over parts-per-million so the result
/// is deterministic everywhere; `loss_ppm = 0` yields exactly `0`, which
/// keeps loss-free configurations byte-identical to the pre-cost-model
/// behaviour. Microsecond resolution is the whole point: broadband's
/// 1 000 ppm over a 2-RTT setup is worth 60 µs — real money across millions
/// of connections, invisible to any per-call whole-millisecond rounding.
/// Callers that charge the integer-millisecond virtual clock accumulate
/// these exact values and round **once per visit** (the loader keeps a
/// sub-millisecond carry in its scratch), never once per connection.
pub fn loss_retransmit_extra_micros(rtt: Duration, rtts: u64, loss_ppm: u32) -> u64 {
    if loss_ppm == 0 || rtts == 0 {
        return 0;
    }
    let ppm = u64::from(loss_ppm.min(999_999));
    rtt.as_millis().saturating_mul(1_000).saturating_mul(rtts).saturating_mul(ppm) / (1_000_000 - ppm)
}

/// [`loss_retransmit_extra_micros`] truncated to a whole-millisecond
/// [`Duration`] — the aggregate repricing form ([`LinkProfile::time_for_rtts`]
/// calls it once over a crawl's total round trips, where the sub-millisecond
/// remainder is noise). Per-connection callers must use the microsecond form
/// and carry the remainder; truncating here per call is exactly the
/// free-ride bug the microsecond split fixed.
pub fn loss_retransmit_extra(rtt: Duration, rtts: u64, loss_ppm: u32) -> Duration {
    Duration::from_millis(loss_retransmit_extra_micros(rtt, rtts, loss_ppm) / 1_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_escalate_in_per_connection_pain() {
        let [dc, bb, cell] = <[LinkProfile; 3]>::try_from(LinkProfile::presets()).unwrap();
        assert!(dc.rtt_ms < bb.rtt_ms && bb.rtt_ms < cell.rtt_ms);
        assert!(dc.bandwidth_bytes_per_ms > bb.bandwidth_bytes_per_ms);
        assert!(bb.bandwidth_bytes_per_ms > cell.bandwidth_bytes_per_ms);
        assert!(dc.loss_ppm < bb.loss_ppm && bb.loss_ppm < cell.loss_ppm);
        assert_eq!(dc.name, "datacenter");
    }

    #[test]
    fn broadband_matches_the_browser_defaults() {
        // Pricing under `broadband` describes the substrate's historical
        // 30 ms / 6 000 bytes-per-ms configuration, and its 0.1 % loss is
        // worth 60 µs per 2-round-trip setup (90 µs per 3). The whole-
        // millisecond form still truncates a single setup to zero — which
        // is precisely why per-connection callers must use the microsecond
        // form and carry the remainder across the visit (the loader does;
        // ~17 broadband setups accumulate into a real millisecond instead
        // of riding free).
        let bb = LinkProfile::broadband();
        assert_eq!(bb.rtt_ms, 30);
        assert_eq!(bb.bandwidth_bytes_per_ms, 6_000);
        assert_eq!(loss_retransmit_extra_micros(bb.rtt(), 2, bb.loss_ppm), 60);
        assert_eq!(loss_retransmit_extra_micros(bb.rtt(), 3, bb.loss_ppm), 90);
        assert_eq!(loss_retransmit_extra(bb.rtt(), 2, bb.loss_ppm), Duration::ZERO);
        // 17 two-RTT setups: 17 × 60 µs = 1 020 µs — one whole millisecond
        // a per-call truncation would have dropped entirely.
        assert_eq!(loss_retransmit_extra_micros(bb.rtt(), 2 * 17, bb.loss_ppm) / 1_000, 1);
    }

    #[test]
    fn micros_and_millis_forms_agree_on_the_floor() {
        // The Duration form is exactly the microsecond form truncated to
        // whole milliseconds, for every profile and round-trip count.
        for profile in LinkProfile::presets() {
            for rtts in [0, 1, 2, 3, 10, 1_000] {
                assert_eq!(
                    loss_retransmit_extra(profile.rtt(), rtts, profile.loss_ppm),
                    Duration::from_millis(
                        loss_retransmit_extra_micros(profile.rtt(), rtts, profile.loss_ppm) / 1_000
                    ),
                    "{} × {rtts}",
                    profile.name
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "zero bandwidth")]
    fn zero_bandwidth_is_rejected_at_construction() {
        let _ = LinkProfile::new("broken", 30, 0, 0);
    }

    #[test]
    fn zero_loss_adds_zero_latency() {
        let rtt = Duration::from_millis(30);
        assert_eq!(loss_retransmit_extra(rtt, 1_000, 0), Duration::ZERO);
        assert_eq!(loss_retransmit_extra(rtt, 0, 20_000), Duration::ZERO);
    }

    #[test]
    fn loss_penalty_is_monotone_in_loss_and_rtts() {
        let rtt = Duration::from_millis(120);
        // 2 % loss over 1000 round trips: 120 000 ms × 20000 / 980000 ≈ 2448 ms.
        assert_eq!(loss_retransmit_extra(rtt, 1_000, 20_000), Duration::from_millis(2_448));
        assert!(loss_retransmit_extra(rtt, 1_000, 50_000) > loss_retransmit_extra(rtt, 1_000, 20_000));
        assert!(loss_retransmit_extra(rtt, 2_000, 20_000) > loss_retransmit_extra(rtt, 1_000, 20_000));
    }

    #[test]
    fn time_for_rtts_composes_base_and_penalty() {
        let cell = LinkProfile::lossy_cellular();
        let base = cell.rtt().saturating_mul(10);
        assert!(cell.time_for_rtts(10) > base);
        let dc = LinkProfile::datacenter();
        assert_eq!(dc.time_for_rtts(10), Duration::from_millis(20));
    }
}
