//! Cross-page aggregation for multi-page user sessions.
//!
//! The paper prices redundancy on *cold single-page* visits; the fleet
//! scenario prices it where it actually accrues — across the pages of a user
//! session, where a warm connection pool, carried TLS tickets and a shared
//! DNS cache can amortise setup cost over many navigations. Vulimiri et al.
//! ("Low Latency via Redundancy") motivate exactly this unit of account:
//! per-connection setup cost over a session, not one page.
//!
//! [`SessionTotals`] wraps [`CostTotals`] with a session counter so reports
//! can derive per-session (not just per-page) metrics. Like every aggregate
//! in this workspace, [`SessionTotals::merge`] is an associative,
//! order-insensitive integer sum — shard rule 3 of the determinism contract.

use crate::timeline::VisitTimeline;
use crate::totals::CostTotals;
use serde::{Deserialize, Serialize};

/// Aggregate cost counters over a set of multi-page sessions.
///
/// `totals.visits` counts *pages*; `sessions` counts completed sessions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionTotals {
    /// Number of completed sessions folded in.
    pub sessions: u64,
    /// Page-level totals across every session.
    pub totals: CostTotals,
}

impl SessionTotals {
    /// An empty aggregate.
    pub fn new() -> Self {
        SessionTotals::default()
    }

    /// Fold one page visit's timeline into the running totals.
    pub fn absorb_page(&mut self, timeline: &VisitTimeline) {
        self.totals.absorb_visit(timeline);
    }

    /// Mark the current session complete. Call once per session, after its
    /// last page has been absorbed.
    pub fn end_session(&mut self) {
        self.sessions += 1;
    }

    /// Merge another shard's totals (associative, order-insensitive).
    pub fn merge(&mut self, other: &SessionTotals) {
        self.sessions += other.sessions;
        self.totals.merge(&other.totals);
    }

    /// Number of pages folded in across all sessions.
    pub fn pages(&self) -> u64 {
        self.totals.visits
    }

    /// Mean pages per completed session.
    pub fn mean_pages_per_session(&self) -> f64 {
        if self.sessions == 0 {
            0.0
        } else {
            self.pages() as f64 / self.sessions as f64
        }
    }

    /// Mean connections opened per completed session.
    pub fn mean_opens_per_session(&self) -> f64 {
        if self.sessions == 0 {
            0.0
        } else {
            self.totals.sums.connections_opened as f64 / self.sessions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(scale: u64) -> VisitTimeline {
        VisitTimeline {
            connections_opened: 2 * scale,
            connections_reused: 3 * scale,
            requests: 10 * scale,
            plt_millis: 500 * scale,
            ..VisitTimeline::default()
        }
    }

    #[test]
    fn merge_equals_the_batch_fold() {
        let mut batch = SessionTotals::new();
        let mut left = SessionTotals::new();
        let mut right = SessionTotals::new();
        for session in 0..4u64 {
            let shard = if session % 2 == 0 { &mut left } else { &mut right };
            for p in 1..=(session + 1) {
                batch.absorb_page(&page(p));
                shard.absorb_page(&page(p));
            }
            batch.end_session();
            shard.end_session();
        }
        let mut merged = left;
        merged.merge(&right);
        assert_eq!(merged, batch);
        let mut reversed = right;
        reversed.merge(&left);
        assert_eq!(reversed, batch);
    }

    #[test]
    fn per_session_means() {
        let mut totals = SessionTotals::new();
        totals.absorb_page(&page(1));
        totals.absorb_page(&page(2));
        totals.end_session();
        totals.absorb_page(&page(3));
        totals.end_session();
        assert_eq!(totals.sessions, 2);
        assert_eq!(totals.pages(), 3);
        assert!((totals.mean_pages_per_session() - 1.5).abs() < 1e-9);
        // 2+4+6 opens over 2 sessions.
        assert!((totals.mean_opens_per_session() - 6.0).abs() < 1e-9);
        assert_eq!(SessionTotals::new().mean_pages_per_session(), 0.0);
        assert_eq!(SessionTotals::new().mean_opens_per_session(), 0.0);
    }
}
