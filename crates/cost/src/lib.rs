//! # netsim-cost
//!
//! The latency & cost accounting engine: a deterministic **virtual-clock cost
//! model** that prices every connection the simulated browser opens — and
//! therefore every *redundant* connection it need not have opened.
//!
//! §2.1 of the paper motivates connection reuse with the price of each
//! additional connection: a TCP handshake, one or two TLS round trips, a cold
//! congestion window and duplicated header state. Goel et al. ("Domain-
//! Sharding for Faster HTTP/2 in Lossy Cellular Networks") and Vulimiri et
//! al. ("Low Latency via Redundancy") both argue that the *latency* impact of
//! connection choices is the quantity operators act on. The rest of the
//! workspace counts redundant connections; this crate prices them:
//!
//! * [`link`] — [`LinkProfile`]: RTT / bandwidth / loss presets (datacenter,
//!   broadband, lossy cellular) that turn one scenario into a family of
//!   workloads, plus the deterministic retransmission-latency model,
//! * [`timeline`] — [`VisitTimeline`]: the fixed-size per-visit counter block
//!   the browser's [`VisitScratch`] accumulates on the zero-allocation fast
//!   path (plain integer fields — no per-request heap traffic, ever),
//! * [`totals`] — [`CostTotals`]: the streaming, shard-mergeable aggregate of
//!   visit timelines (mirroring `connreuse_core::Accumulator`), with the
//!   derived RTT / byte / page-load-time metrics the `cost` experiment and
//!   the atlas report render,
//! * [`session`] — [`SessionTotals`]: the cross-page aggregate for the
//!   `fleet` scenario's multi-page user sessions, counting sessions and
//!   pages apart so reports can price redundancy per session, not per page.
//!
//! The model is *accounting-only*: it observes the simulated visit (which
//! already advances its own [`netsim_types::SimClock`] past handshakes and
//! transfers) and tallies where the time and bytes went. Costs are stored as
//! raw counts (round trips, octets, authority queries) so one crawl can be
//! re-priced under any [`LinkProfile`] after the fact; the milliseconds the
//! loader actually charged are recorded alongside for exactness.
//!
//! ## Merging across shards
//!
//! [`CostTotals::merge`] is associative and order-insensitive, mirroring
//! `connreuse_core::Accumulator::merge`. That pair of merge laws is the
//! whole determinism contract of the parallel atlas: the work-stealing
//! executor can hand chunks to workers in any order, and the chunk-ordered
//! merge afterwards still reproduces the sequential fold byte for byte
//! (property-tested in `crates/experiments/tests/partition_equivalence.rs`).
//!
//! [`VisitScratch`]: ../netsim_browser/struct.VisitScratch.html

pub mod link;
pub mod session;
pub mod timeline;
pub mod totals;

pub use link::{loss_retransmit_extra, loss_retransmit_extra_micros, LinkProfile};
pub use session::SessionTotals;
pub use timeline::VisitTimeline;
pub use totals::CostTotals;
