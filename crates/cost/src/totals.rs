//! Streaming, shard-mergeable aggregation of visit timelines.
//!
//! [`CostTotals`] is to [`VisitTimeline`] what `connreuse_core::Accumulator`
//! is to a site classification: fold one visit at a time
//! ([`CostTotals::absorb_visit`]), merge per-worker shards afterwards
//! ([`CostTotals::merge`]). Every field is a per-visit sum, so the merge is
//! associative and order-insensitive — `threads = 1` and `threads = N`
//! produce byte-identical aggregates (asserted in `tests/determinism.rs`).
//!
//! The derived metrics re-price the stored counts under any
//! [`LinkProfile`], which is how one crawl answers "what would this
//! redundancy cost on a lossy cellular link?" without being re-run.

use crate::link::LinkProfile;
use crate::timeline::VisitTimeline;
use netsim_types::Duration;
use serde::{Deserialize, Serialize};

/// Aggregate cost counters over a set of visits.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostTotals {
    /// Number of visits folded in.
    pub visits: u64,
    /// Component-wise sums of the per-visit timelines.
    pub sums: VisitTimeline,
}

impl CostTotals {
    /// An empty aggregate.
    pub fn new() -> Self {
        CostTotals::default()
    }

    /// Fold one visit's timeline into the running totals.
    pub fn absorb_visit(&mut self, timeline: &VisitTimeline) {
        self.visits += 1;
        self.sums.absorb(timeline);
    }

    /// Merge another shard's totals (associative, order-insensitive).
    pub fn merge(&mut self, other: &CostTotals) {
        self.visits += other.visits;
        self.sums.absorb(&other.sums);
    }

    /// Number of words in the fixed-width persistence layout: the visit
    /// count followed by the [`VisitTimeline`] words.
    pub const WORDS: usize = 1 + VisitTimeline::WORDS;

    /// The fixed-width word layout the shard store persists.
    pub fn to_words(&self) -> [u64; Self::WORDS] {
        let mut words = [0u64; Self::WORDS];
        words[0] = self.visits;
        words[1..].copy_from_slice(&self.sums.to_words());
        words
    }

    /// Rebuild from the fixed-width word layout.
    pub fn from_words(words: &[u64; Self::WORDS]) -> Self {
        let mut timeline = [0u64; VisitTimeline::WORDS];
        timeline.copy_from_slice(&words[1..]);
        CostTotals { visits: words[0], sums: VisitTimeline::from_words(&timeline) }
    }

    /// Wall-clock spent in TCP/TLS handshakes under `profile`, including its
    /// loss-retransmission penalty.
    pub fn handshake_time(&self, profile: &LinkProfile) -> Duration {
        profile.time_for_rtts(self.sums.handshake_rtts)
    }

    /// Wall-clock spent growing cold congestion windows under `profile`.
    pub fn cold_cwnd_time(&self, profile: &LinkProfile) -> Duration {
        profile.time_for_rtts(self.sums.cold_cwnd_rtts)
    }

    /// Wall-clock spent on recursive DNS walks under `profile` (one round
    /// trip per authority query, loss-inflated like every other round trip;
    /// cache hits are free).
    pub fn dns_time(&self, profile: &LinkProfile) -> Duration {
        profile.time_for_rtts(self.sums.dns_authority_queries)
    }

    /// Total connection-setup cost under `profile`: DNS walks, handshakes
    /// and cold-window growth.
    pub fn setup_time(&self, profile: &LinkProfile) -> Duration {
        self.dns_time(profile) + self.handshake_time(profile) + self.cold_cwnd_time(profile)
    }

    /// Mean page-load time per visit, in milliseconds of simulated time.
    pub fn mean_plt_millis(&self) -> f64 {
        if self.visits == 0 {
            0.0
        } else {
            self.sums.plt_millis as f64 / self.visits as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timeline(scale: u64) -> VisitTimeline {
        VisitTimeline {
            dns_cache_hits: scale,
            dns_recursive_walks: 2 * scale,
            dns_authority_queries: 3 * scale,
            dns_failures: 0,
            connections_opened: 4 * scale,
            connections_reused: 5 * scale,
            handshake_rtts: 8 * scale,
            handshake_octets: 9_000 * scale,
            handshake_millis: 240 * scale,
            loss_retransmit_micros: 130 * scale,
            resumed_handshakes: 0,
            cold_cwnd_rtts: 6 * scale,
            requests: 9 * scale,
            body_octets: 50_000 * scale,
            plt_millis: 700 * scale,
            faults_injected: 7 * scale,
            retries: 2 * scale,
            retry_backoff_millis: 300 * scale,
            failed_resources: scale,
            goaways_received: scale,
            dead_on_reuse: scale,
            hedged_dials: 0,
        }
    }

    #[test]
    fn merge_equals_the_batch_fold() {
        // Shard-merge associativity: folding visits into two shards and
        // merging equals folding them all into one aggregate.
        let visits: Vec<VisitTimeline> = (1..=6).map(timeline).collect();
        let mut batch = CostTotals::new();
        for visit in &visits {
            batch.absorb_visit(visit);
        }
        let mut left = CostTotals::new();
        let mut right = CostTotals::new();
        for (index, visit) in visits.iter().enumerate() {
            if index % 2 == 0 {
                left.absorb_visit(visit);
            } else {
                right.absorb_visit(visit);
            }
        }
        let mut merged = left;
        merged.merge(&right);
        assert_eq!(merged, batch);
        // Merge is order-insensitive.
        let mut reversed = right;
        reversed.merge(&left);
        assert_eq!(reversed, batch);
    }

    #[test]
    fn derived_costs_scale_with_the_profile() {
        let mut totals = CostTotals::new();
        totals.absorb_visit(&timeline(10));
        let dc = LinkProfile::datacenter();
        let cell = LinkProfile::lossy_cellular();
        assert!(totals.setup_time(&cell) > totals.setup_time(&dc));
        assert_eq!(totals.dns_time(&dc), Duration::from_millis(2 * 30));
        assert_eq!(totals.handshake_time(&dc), Duration::from_millis(2 * 80));
        assert!((totals.mean_plt_millis() - 7_000.0).abs() < 1e-9);
    }

    #[test]
    fn words_round_trip_and_price_identically() {
        let mut totals = CostTotals::new();
        totals.absorb_visit(&timeline(3));
        totals.absorb_visit(&timeline(5));
        let decoded = CostTotals::from_words(&totals.to_words());
        assert_eq!(decoded, totals);
        let profile = LinkProfile::lossy_cellular();
        assert_eq!(decoded.setup_time(&profile), totals.setup_time(&profile));

        // Distinct value per word: dropped or swapped fields cannot pass.
        let words: [u64; CostTotals::WORDS] = std::array::from_fn(|index| 500 + index as u64);
        assert_eq!(CostTotals::from_words(&words).to_words(), words);
    }

    #[test]
    fn empty_totals_price_to_zero() {
        let totals = CostTotals::new();
        assert_eq!(totals.setup_time(&LinkProfile::lossy_cellular()), Duration::ZERO);
        assert_eq!(totals.mean_plt_millis(), 0.0);
    }
}
