//! Shared fixtures for the Criterion benchmarks.
//!
//! Every bench group works on the same small, deterministic fixture so that
//! run-to-run numbers are comparable: a bench-sized population per profile,
//! the corresponding crawls, and their ingested datasets.

use connreuse_core::{dataset_from_crawl, Dataset};
use netsim_browser::{BrowserConfig, Crawler};
use netsim_web::{PopulationBuilder, PopulationProfile, WebEnvironment};

/// Number of sites in the bench populations (kept small so `cargo bench`
/// finishes quickly while still exercising every code path).
pub const BENCH_SITES: usize = 120;

/// Seed used by all bench fixtures.
pub const BENCH_SEED: u64 = 0xC0FFEE;

/// Build the bench-sized Alexa-profile population.
pub fn bench_environment() -> WebEnvironment {
    PopulationBuilder::new(PopulationProfile::alexa(), BENCH_SITES, BENCH_SEED).build()
}

/// Build the bench-sized archive-profile population.
pub fn bench_archive_environment() -> WebEnvironment {
    PopulationBuilder::new(PopulationProfile::archive(), BENCH_SITES, BENCH_SEED + 1).build()
}

/// Crawl an environment with the given configuration and ingest the result.
pub fn crawl_dataset(env: &WebEnvironment, label: &str, config: BrowserConfig) -> Dataset {
    let report = Crawler::new(label, config, BENCH_SEED).crawl(env);
    dataset_from_crawl(&report)
}

/// The stock-Chromium crawl of the bench population.
pub fn bench_dataset(env: &WebEnvironment) -> Dataset {
    crawl_dataset(env, "bench", BrowserConfig::alexa_measurement())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let env = bench_environment();
        assert_eq!(env.site_count(), BENCH_SITES);
        let dataset = bench_dataset(&env);
        assert_eq!(dataset.sites.len(), BENCH_SITES);
        assert!(dataset.total_connections() > BENCH_SITES);
    }
}
