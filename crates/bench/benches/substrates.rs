//! Micro-benchmarks of the substrates everything else is built on: DNS
//! resolution, the reuse predicate, HTTP/2 frame codec, HPACK, population
//! generation and single page loads.

use connreuse_bench::{bench_environment, BENCH_SEED};
use connreuse_experiments::sweep::{run_sweep, SweepConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use netsim_browser::{Browser, BrowserConfig};
use netsim_dns::{RecursiveResolver, ResolverConfig, ResolverId, Vantage};
use netsim_h2::hpack::HpackContext;
use netsim_h2::reuse::{evaluate, ReusePolicy};
use netsim_h2::{Connection, Frame, OriginEntry, Settings, StreamId};
use netsim_tls::{CertificateStore, IssuancePolicy, Issuer};
use netsim_types::{ConnectionId, DomainName, Instant, IpAddr, MitigationSet, Origin, SimClock, SimRng};
use netsim_web::{PopulationBuilder, PopulationProfile};
use std::hint::black_box;

fn bench_dns_resolution(c: &mut Criterion) {
    let env = bench_environment();
    let analytics = DomainName::literal("www.google-analytics.com");
    let mut group = c.benchmark_group("substrate_dns");
    group.sample_size(50);
    group.bench_function("resolve_cold", |b| {
        b.iter(|| {
            let mut resolver =
                RecursiveResolver::new(ResolverConfig::new(ResolverId(1), Vantage::Europe, "bench"));
            black_box(resolver.resolve(&env.authority, &analytics, Instant::EPOCH).unwrap().primary_address())
        })
    });
    group.bench_function("resolve_cached", |b| {
        let mut resolver =
            RecursiveResolver::new(ResolverConfig::new(ResolverId(1), Vantage::Europe, "bench"));
        resolver.resolve(&env.authority, &analytics, Instant::EPOCH).unwrap();
        b.iter(|| {
            black_box(resolver.resolve(&env.authority, &analytics, Instant::EPOCH).unwrap().primary_address())
        })
    });
    group.finish();
}

fn bench_reuse_predicate(c: &mut Criterion) {
    let mut store = CertificateStore::new();
    let domains: Vec<DomainName> =
        (0..50).map(|i| DomainName::literal(&format!("host-{i}.example.com"))).collect();
    let ids =
        store.issue_with_policy(Issuer::digicert(), &IssuancePolicy::SharedSan, &domains, Instant::EPOCH);
    let certificate = std::sync::Arc::clone(store.get_arc(ids[0]).unwrap());
    let connection = Connection::establish(
        ConnectionId(1),
        Origin::https(domains[0]),
        IpAddr::new(10, 0, 0, 1),
        certificate,
        true,
        Instant::EPOCH,
        Settings::default(),
    );
    let target = Origin::https(domains[49]);
    let mut group = c.benchmark_group("substrate_reuse_predicate");
    group.sample_size(100);
    group.bench_function("evaluate_match", |b| {
        b.iter(|| {
            black_box(evaluate(
                &connection,
                &target,
                IpAddr::new(10, 0, 0, 1),
                true,
                &ReusePolicy::chromium(),
            ))
        })
    });
    group.bench_function("evaluate_mismatch", |b| {
        b.iter(|| {
            black_box(evaluate(
                &connection,
                &target,
                IpAddr::new(10, 0, 0, 9),
                false,
                &ReusePolicy::chromium(),
            ))
        })
    });
    group.finish();
}

fn bench_h2_frames_and_hpack(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_h2");
    group.sample_size(100);
    let origin_frame = Frame::Origin {
        origins: (0..20)
            .map(|i| OriginEntry::https(&DomainName::literal(&format!("shard-{i}.example.com"))))
            .collect(),
    };
    group.bench_function("origin_frame_roundtrip", |b| {
        b.iter(|| {
            let mut wire = origin_frame.encode();
            black_box(Frame::decode(&mut wire).unwrap())
        })
    });
    let headers_frame = Frame::Headers { stream: StreamId::new(1), block: vec![0x82; 64], end_stream: true };
    group.bench_function("headers_frame_roundtrip", |b| {
        b.iter(|| {
            let mut wire = headers_frame.encode();
            black_box(Frame::decode(&mut wire).unwrap())
        })
    });
    let request = HpackContext::request_headers("www.example.com", "/assets/app.js", Some("sid=abc"));
    group.bench_function("hpack_encode_warm", |b| {
        let mut ctx = HpackContext::default();
        ctx.encode_block_size(&request);
        b.iter(|| black_box(ctx.encode_block_size(&request)))
    });
    group.finish();
}

fn bench_population_and_page_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_population_browser");
    group.sample_size(10);
    group.bench_function("build_population_120_sites", |b| {
        b.iter(|| black_box(PopulationBuilder::new(PopulationProfile::alexa(), 120, BENCH_SEED).build()))
    });
    let env = bench_environment();
    group.bench_function("load_single_page", |b| {
        b.iter(|| {
            let mut browser = Browser::new(BrowserConfig::alexa_measurement());
            let mut clock = SimClock::new();
            let mut rng = SimRng::new(BENCH_SEED);
            black_box(browser.load_page(&env, &env.sites[0], &mut clock, &mut rng))
        })
    });
    group.finish();
}

fn bench_mitigation_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("mitigation_sweep");
    group.sample_size(10);
    // The reuse predicate under the relaxed mitigation policy (ORIGIN frames
    // honoured without RFC 8336 strictness + pooled credentials).
    let mut store = CertificateStore::new();
    let domains: Vec<DomainName> =
        (0..16).map(|i| DomainName::literal(&format!("shard-{i}.example.com"))).collect();
    let ids =
        store.issue_with_policy(Issuer::digicert(), &IssuancePolicy::SharedSan, &domains, Instant::EPOCH);
    let mut connection = Connection::establish(
        ConnectionId(1),
        Origin::https(domains[0]),
        IpAddr::new(10, 0, 0, 1),
        std::sync::Arc::clone(store.get_arc(ids[0]).unwrap()),
        true,
        Instant::EPOCH,
        Settings::default(),
    );
    connection.receive_origin_set(domains.iter().cloned());
    let target = Origin::https(domains[15]);
    let relaxed = ReusePolicy::with_mitigations(MitigationSet::all());
    group.bench_function("evaluate_mitigated_policy", |b| {
        b.iter(|| black_box(evaluate(&connection, &target, IpAddr::new(10, 0, 0, 9), false, &relaxed)))
    });
    // One full 16-cell sweep on a small population: the end-to-end cost of
    // the what-if matrix (population builds, crawls, classification, report).
    let config = SweepConfig { sites: 16, seed: BENCH_SEED, threads: 4 };
    group
        .bench_function("run_sweep_16_sites_16_cells", |b| b.iter(|| black_box(run_sweep(&config).render())));
    group.finish();
}

criterion_group!(
    substrates,
    bench_dns_resolution,
    bench_reuse_predicate,
    bench_h2_frames_and_hpack,
    bench_population_and_page_load,
    bench_mitigation_sweep
);
criterion_main!(substrates);
