//! Ablation benches for the design choices DESIGN.md calls out: what changes
//! when the Fetch credentials partition is dropped, when ORIGIN frames are
//! honoured, when DNS load balancing is synchronized, and what a redundant
//! connection costs in handshake latency and header-compression state.

use connreuse_bench::{bench_environment, BENCH_SEED};
use criterion::{criterion_group, criterion_main, Criterion};
use netsim_browser::{BrowserConfig, Crawler};
use netsim_dns::{LoadBalancePolicy, QueryContext, ResolverId, Vantage};
use netsim_h2::hpack::HpackContext;
use netsim_tls::{HandshakeConfig, TlsVersion};
use netsim_types::{DomainName, Duration, Instant, IpAddr};
use std::hint::black_box;

/// Crawl the same population under the three reuse policies the paper
/// discusses: stock Chromium, Chromium without the Fetch credentials flag,
/// and a hypothetical RFC 8336 client.
fn bench_reuse_policy_ablation(c: &mut Criterion) {
    let env = bench_environment();
    let mut group = c.benchmark_group("ablation_reuse_policy");
    group.sample_size(10);
    let configurations = [
        ("chromium", BrowserConfig::alexa_measurement()),
        ("without_fetch", BrowserConfig::alexa_without_fetch()),
        ("origin_frames", BrowserConfig::with_origin_frames()),
    ];
    for (label, config) in configurations {
        group.bench_function(label, |b| {
            b.iter(|| black_box(Crawler::new(label, config.clone(), BENCH_SEED).crawl(&env)))
        });
    }
    group.finish();
}

/// Resolve the same domain pair under unsynchronized vs. synchronized
/// balancing: the fix the paper proposes for the IP cause.
fn bench_dns_policy_ablation(c: &mut Criterion) {
    let pool: Vec<IpAddr> = (0..16).map(|i| IpAddr::new(142, 250, 74, i)).collect();
    let unsynchronized = LoadBalancePolicy::PerResolverPool {
        pool: pool.clone(),
        answer_size: 1,
        epoch: Duration::from_mins(30),
    };
    let synchronized =
        LoadBalancePolicy::SynchronizedPool { pool, answer_size: 1, epoch: Duration::from_mins(30) };
    let analytics = DomainName::literal("www.google-analytics.com");
    let tag_manager = DomainName::literal("www.googletagmanager.com");
    let mut group = c.benchmark_group("ablation_dns_policy");
    group.sample_size(30);
    for (label, policy) in [("unsynchronized", &unsynchronized), ("synchronized", &synchronized)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut overlapping = 0u32;
                for resolver in 0..14u32 {
                    let ctx = QueryContext::new(ResolverId(resolver), Vantage::Europe, Instant::EPOCH);
                    let a = policy.select(&analytics, &ctx);
                    let b_answer = policy.select(&tag_manager, &ctx);
                    if a.iter().any(|ip| b_answer.contains(ip)) {
                        overlapping += 1;
                    }
                }
                black_box(overlapping)
            })
        });
    }
    group.finish();
}

/// The per-connection latency price of redundancy: handshake round trips
/// under the TLS configurations discussed in §2.1.
fn bench_handshake_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_handshake_cost");
    group.sample_size(50);
    let configurations = [
        (
            "tls13_cold",
            HandshakeConfig { version: TlsVersion::Tls13, session_resumption: false, quic: false },
        ),
        (
            "tls12_cold",
            HandshakeConfig { version: TlsVersion::Tls12, session_resumption: false, quic: false },
        ),
        (
            "tls13_resumed",
            HandshakeConfig { version: TlsVersion::Tls13, session_resumption: true, quic: false },
        ),
        ("quic_0rtt", HandshakeConfig { version: TlsVersion::Tls13, session_resumption: true, quic: true }),
    ];
    let rtt = Duration::from_millis(30);
    for (label, config) in configurations {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut total = Duration::ZERO;
                for _ in 0..100 {
                    total = total + config.setup_latency(rtt);
                }
                black_box(total)
            })
        });
    }
    group.finish();
}

/// The header-compression price of a redundant connection: encoding the same
/// request stream on one long-lived context vs. restarting the dictionary.
fn bench_hpack_restart_cost(c: &mut Criterion) {
    let requests: Vec<Vec<netsim_h2::Header>> = (0..50)
        .map(|i| {
            HpackContext::request_headers("www.google-analytics.com", &format!("/collect?cid={i}"), None)
        })
        .collect();
    let mut group = c.benchmark_group("ablation_hpack_restart");
    group.sample_size(50);
    group.bench_function("single_connection", |b| {
        b.iter(|| {
            let mut ctx = HpackContext::default();
            let mut total = 0usize;
            for headers in &requests {
                total += ctx.encode_block_size(headers);
            }
            black_box(total)
        })
    });
    group.bench_function("fresh_connection_per_request", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for headers in &requests {
                let mut ctx = HpackContext::default();
                total += ctx.encode_block_size(headers);
            }
            black_box(total)
        })
    });
    group.finish();
}

criterion_group!(
    ablations,
    bench_reuse_policy_ablation,
    bench_dns_policy_ablation,
    bench_handshake_cost,
    bench_hpack_restart_cost
);
criterion_main!(ablations);
