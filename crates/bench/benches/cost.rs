//! Benchmarks of the latency & cost accounting engine.
//!
//! The headline comparison is `visit_with_cost_accounting` vs
//! `visit_no_cost_baseline`: the identical visit loop through the
//! zero-allocation scratch fast path, with the per-visit
//! [`netsim_cost::VisitTimeline`] accumulation switched on and off. The cost
//! model's contract is that the delta stays within a few percent — a
//! handful of integer adds per request plus the post-visit connection walk,
//! no allocations (asserted by `crates/browser/tests/zero_alloc.rs`); the
//! committed `BENCH_atlas.json` refresh recorded ~7 % on the full atlas,
//! and CI's bench guard fails the build past 25 %.
//!
//! The `pricing` pair measures the read side: folding a crawl's worth of
//! timelines into [`netsim_cost::CostTotals`] and re-pricing the totals
//! under all three [`netsim_cost::LinkProfile`] presets.

use connreuse_bench::bench_environment;
use criterion::{criterion_group, criterion_main, Criterion};
use netsim_browser::{BrowserConfig, Crawler, VisitScratch};
use netsim_cost::{CostTotals, LinkProfile, VisitTimeline};
use std::hint::black_box;

fn bench_cost_accounting(c: &mut Criterion) {
    let env = bench_environment();
    let crawler = Crawler::new("cost-bench", BrowserConfig::alexa_measurement(), 0xC0FFEE);

    let mut group = c.benchmark_group("cost");
    group.sample_size(20);

    group.bench_function("visit_with_cost_accounting", |b| {
        let mut scratch = VisitScratch::without_netlog().with_cost_accounting(true);
        b.iter(|| {
            let mut totals = CostTotals::new();
            for index in 0..env.sites.len() {
                let _ = crawler.visit_site_into(&mut scratch, &env, index);
                totals.absorb_visit(scratch.timeline());
            }
            black_box(totals)
        })
    });

    group.bench_function("visit_no_cost_baseline", |b| {
        let mut scratch = VisitScratch::without_netlog().with_cost_accounting(false);
        b.iter(|| {
            let mut requests = 0usize;
            for index in 0..env.sites.len() {
                let _ = crawler.visit_site_into(&mut scratch, &env, index);
                requests += scratch.requests().len();
            }
            black_box(requests)
        })
    });

    group.finish();
}

fn bench_pricing(c: &mut Criterion) {
    // A crawl's worth of timelines, captured once.
    let env = bench_environment();
    let crawler = Crawler::new("cost-bench", BrowserConfig::alexa_measurement(), 0xC0FFEE);
    let mut scratch = VisitScratch::without_netlog();
    let timelines: Vec<VisitTimeline> = (0..env.sites.len())
        .map(|index| {
            let _ = crawler.visit_site_into(&mut scratch, &env, index);
            *scratch.timeline()
        })
        .collect();

    let mut group = c.benchmark_group("cost");
    group.sample_size(50);

    group.bench_function("timeline_fold", |b| {
        b.iter(|| {
            let mut totals = CostTotals::new();
            for timeline in &timelines {
                totals.absorb_visit(timeline);
            }
            black_box(totals)
        })
    });

    group.bench_function("reprice_under_all_profiles", |b| {
        let mut totals = CostTotals::new();
        for timeline in &timelines {
            totals.absorb_visit(timeline);
        }
        let profiles = LinkProfile::presets();
        b.iter(|| {
            let mut millis = 0u64;
            for profile in &profiles {
                millis += totals.setup_time(profile).as_millis();
            }
            black_box(millis)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_cost_accounting, bench_pricing);
criterion_main!(benches);
