//! Benchmarks of the atlas scale engine and the interned-id aggregation it
//! is built on.
//!
//! The `aggregate_*` trio quantifies what the interning migration bought.
//! All variants run the same batch pass — build one record per classified
//! connection, then fold per-origin counts into maps — and differ only in
//! how origins are owned and keyed:
//!
//! * `aggregate_per_origin_strings` — the pre-intern path: every record
//!   construction and every map insertion clones the origin as a heap
//!   `String` into a `BTreeMap`, exactly what
//!   `core::ingest`/`classify`/`attribution` did before the migration.
//! * `aggregate_per_origin_copy_btree` — the migrated production shape
//!   (`core::attribution` today): same `BTreeMap` fold with textual `Ord`,
//!   but records and keys are copyable `DomainName` handles. The delta vs.
//!   `strings` isolates the clone removal alone.
//! * `aggregate_per_origin_interned` — the fold interning newly *enables*:
//!   keys are the 4-byte `DomainId` in a hash map (no per-key allocation,
//!   no string compares). This is what the acceptance "≥2x over the
//!   pre-intern batch path" refers to; the id-keyed fold is impossible
//!   without a stable intern table.
//!
//! The streaming pair compares the shard-merged `Accumulator` against the
//! single-pass batch summary (they are the same math; the comparison shows
//! merging is free).

use connreuse_bench::{bench_dataset, bench_environment};
use connreuse_core::{classify_dataset, Accumulator, Cause, DatasetSummary, DurationModel};
use connreuse_experiments::atlas::{run_atlas, AtlasConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use netsim_types::DomainId;
use std::collections::{BTreeMap, HashMap};
use std::hint::black_box;

/// The pre-intern shape of a classified connection: origins owned as heap
/// strings, cloned on construction and on every map insertion (the "clone
/// storm").
struct StringConnection {
    origin: String,
    redundant: bool,
    causes: Vec<Cause>,
}

/// The post-migration shape: the origin is a copyable interned handle.
struct InternedConnection {
    origin: netsim_types::DomainName,
    redundant: bool,
    causes: Vec<Cause>,
}

fn bench_aggregation(c: &mut Criterion) {
    let env = bench_environment();
    let dataset = bench_dataset(&env);
    let classifications = classify_dataset(&dataset, DurationModel::Recorded);

    // The pre-intern source data: origins owned as heap strings, as the
    // observation model held them before the migration.
    let string_sites: Vec<Vec<(String, bool, Vec<Cause>)>> = classifications
        .iter()
        .map(|site| {
            site.connections
                .iter()
                .map(|connection| {
                    (
                        connection.origin.to_string(),
                        connection.is_redundant(),
                        Cause::ALL.iter().copied().filter(|c| connection.has_cause(*c)).collect(),
                    )
                })
                .collect()
        })
        .collect();

    let mut group = c.benchmark_group("atlas");
    group.sample_size(50);

    group.bench_function("aggregate_per_origin_interned", |b| {
        b.iter(|| {
            // Stage 1: per-connection records — `DomainName` handles copy.
            let records: Vec<InternedConnection> = classifications
                .iter()
                .flat_map(|site| {
                    site.connections.iter().map(|connection| InternedConnection {
                        origin: connection.origin,
                        redundant: connection.is_redundant(),
                        causes: Cause::ALL.iter().copied().filter(|c| connection.has_cause(*c)).collect(),
                    })
                })
                .collect();
            // Stage 2: per-origin fold keyed by the 4-byte interned id.
            let mut per_origin: HashMap<DomainId, usize> = HashMap::new();
            let mut per_cause: HashMap<(Cause, DomainId), usize> = HashMap::new();
            for record in &records {
                if record.redundant {
                    *per_origin.entry(record.origin.id()).or_default() += 1;
                }
                for cause in &record.causes {
                    *per_cause.entry((*cause, record.origin.id())).or_default() += 1;
                }
            }
            black_box((per_origin.len(), per_cause.len()))
        })
    });

    group.bench_function("aggregate_per_origin_copy_btree", |b| {
        b.iter(|| {
            // Same records as the interned variant, but folded the way
            // `core::attribution` keys its tables today: a BTreeMap keyed by
            // the copyable handle with textual Ord. Isolates clone removal.
            let records: Vec<InternedConnection> = classifications
                .iter()
                .flat_map(|site| {
                    site.connections.iter().map(|connection| InternedConnection {
                        origin: connection.origin,
                        redundant: connection.is_redundant(),
                        causes: Cause::ALL.iter().copied().filter(|c| connection.has_cause(*c)).collect(),
                    })
                })
                .collect();
            let mut per_origin: BTreeMap<netsim_types::DomainName, usize> = BTreeMap::new();
            let mut per_cause: BTreeMap<(Cause, netsim_types::DomainName), usize> = BTreeMap::new();
            for record in &records {
                if record.redundant {
                    *per_origin.entry(record.origin).or_default() += 1;
                }
                for cause in &record.causes {
                    *per_cause.entry((*cause, record.origin)).or_default() += 1;
                }
            }
            black_box((per_origin.len(), per_cause.len()))
        })
    });

    group.bench_function("aggregate_per_origin_strings", |b| {
        b.iter(|| {
            // Stage 1: per-connection records — every origin is a `String`
            // clone (the pre-intern ingest/classify behaviour).
            let records: Vec<StringConnection> = string_sites
                .iter()
                .flat_map(|site| {
                    site.iter().map(|(origin, redundant, causes)| StringConnection {
                        origin: origin.clone(),
                        redundant: *redundant,
                        causes: causes.clone(),
                    })
                })
                .collect();
            // Stage 2: per-origin fold cloning the key on every insertion.
            let mut per_origin: BTreeMap<String, usize> = BTreeMap::new();
            let mut per_cause: BTreeMap<(Cause, String), usize> = BTreeMap::new();
            for record in &records {
                if record.redundant {
                    *per_origin.entry(record.origin.clone()).or_default() += 1;
                }
                for cause in &record.causes {
                    *per_cause.entry((*cause, record.origin.clone())).or_default() += 1;
                }
            }
            black_box((per_origin.len(), per_cause.len()))
        })
    });

    group.bench_function("summary_batch", |b| {
        b.iter(|| black_box(DatasetSummary::from_classifications("bench", &classifications)))
    });

    group.bench_function("summary_streaming_sharded", |b| {
        b.iter(|| {
            let mut shards: Vec<Accumulator> = (0..8).map(|_| Accumulator::new()).collect();
            for (index, site) in classifications.iter().enumerate() {
                shards[index % 8].observe(site);
            }
            let mut merged = Accumulator::new();
            for shard in &shards {
                merged.merge(shard);
            }
            black_box(merged.finish("bench"))
        })
    });

    group.finish();
}

/// The visit engine itself: the pre-scratch batch pipeline (owned
/// `PageVisit` → observation → classification) against the zero-allocation
/// scratch fast path (`visit_site_into` → `FastVisitClassifier`). The ratio
/// is the per-visit win the atlas throughput target is built on.
fn bench_visit_paths(c: &mut Criterion) {
    use connreuse_core::{classify_site, site_from_visit, FastVisitClassifier};
    use netsim_browser::{BrowserConfig, Crawler, VisitScratch};

    let env = bench_environment();
    let crawler = Crawler::new("bench", BrowserConfig::alexa_measurement(), 0xC0FFEE);

    let mut group = c.benchmark_group("atlas");
    group.sample_size(20);

    group.bench_function("visit_legacy_batch_pipeline", |b| {
        b.iter(|| {
            let mut accumulator = Accumulator::new();
            for index in 0..env.sites.len() {
                let visit = crawler.visit_site(&env, index);
                accumulator.observe(&classify_site(&site_from_visit(&visit), DurationModel::Recorded));
            }
            black_box(accumulator.finish("legacy"))
        })
    });

    group.bench_function("visit_scratch_fast_path", |b| {
        let mut scratch = VisitScratch::without_netlog();
        let mut classifier = FastVisitClassifier::new();
        b.iter(|| {
            let mut accumulator = Accumulator::new();
            for index in 0..env.sites.len() {
                let _ = crawler.visit_site_into(&mut scratch, &env, index);
                let counts = connreuse_experiments::atlas::classify_scratch(
                    &mut classifier,
                    &scratch,
                    DurationModel::Recorded,
                );
                accumulator.observe_counts(&counts);
            }
            black_box(accumulator.finish("fast"))
        })
    });

    group.finish();
}

fn bench_atlas_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("atlas");
    group.sample_size(10);
    group.bench_function("end_to_end_120_sites", |b| {
        b.iter(|| {
            black_box(run_atlas(&AtlasConfig {
                sites: 120,
                chunk_sites: 40,
                seed: 0xC0FFEE,
                threads: 4,
                zipf_exponent: 0.35,
            }))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_aggregation, bench_visit_paths, bench_atlas_end_to_end);
criterion_main!(benches);
