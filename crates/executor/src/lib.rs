//! # connreuse-executor
//!
//! A **work-stealing chunk executor** with deterministic, index-addressed
//! results — the scheduling layer under the atlas scale scenario (and any
//! other embarrassingly-parallel, chunk-shaped workload in the workspace).
//!
//! ## Why work stealing
//!
//! The atlas population is processed in fixed-size chunks whose cost is
//! *skewed*: Zipf-mixed head chunks plan several times the requests of deep
//! tail chunks. A static contiguous split (what the pipeline used before this
//! crate existed) finishes when its **slowest** worker does, leaving the other
//! cores idle for the tail of the run. Here every worker owns a deque of task
//! indices; it pops work from the *front* of its own deque and, when that runs
//! dry, **steals from the back** of a sibling's — so the expensive head chunks
//! naturally spread over all workers and the run finishes when the *total*
//! work does.
//!
//! ## Determinism contract
//!
//! Scheduling decides only *who* runs a task and *when* — never what the task
//! computes or where its result lands:
//!
//! * tasks are identified by their index `0..tasks`, and `results[i]` is
//!   always the value task `i` returned, regardless of which worker ran it or
//!   in what order;
//! * the executor itself introduces no randomness: initial deques are
//!   contiguous index blocks, steal victims are scanned in a fixed rotation;
//! * per-worker state (`init`) lets callers keep scratch arenas and memo
//!   tables thread-local without any locking in the task body.
//!
//! A caller whose task function is a pure function of the task index therefore
//! gets **byte-identical output at any thread count** — the property the
//! atlas report's thread-invariance tests pin end to end.
//!
//! ```
//! use connreuse_executor::run_indexed;
//!
//! // Square 100 numbers on 4 workers, each with a (here trivial) worker
//! // state. Results come back in task order, not completion order.
//! let outcome = run_indexed(4, 100, |_worker| (), |(), task| task * task);
//! assert_eq!(outcome.results[7], 49);
//! assert_eq!(outcome.stats.executed.iter().sum::<usize>(), 100);
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Mutex};

/// Scheduling telemetry of one [`run_indexed`] call.
///
/// The stats describe the *schedule*, which is timing-dependent — two runs of
/// the same workload may distribute tasks differently. Callers must keep them
/// out of any deterministic report (the atlas carries them in its
/// wall-clock-only metrics block, next to throughput and peak RSS).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads the run actually used (after clamping to the task
    /// count; a `threads <= 1` run reports a single worker).
    pub workers: usize,
    /// Tasks each worker executed, indexed by worker; sums to the task count.
    pub executed: Vec<usize>,
    /// Tasks that ran on a worker other than the one whose deque initially
    /// held them. 0 on a perfectly balanced run; grows with cost skew.
    pub steals: u64,
}

/// Results and scheduling stats of one [`run_indexed`] call.
#[derive(Clone, Debug)]
pub struct RunOutcome<R> {
    /// `results[i]` is what the task function returned for task `i` —
    /// independent of worker count and steal schedule.
    pub results: Vec<R>,
    /// How the run was scheduled (timing-dependent; see [`PoolStats`]).
    pub stats: PoolStats,
}

/// Run `tasks` task indices across `threads` workers with work stealing.
///
/// `init(worker_index)` builds each worker's private state once (scratch
/// arenas, classifiers, caches); `run(&mut state, task_index)` executes one
/// task and its return value is stored at `results[task_index]`.
///
/// `threads` is clamped to `1..=tasks`; with one worker (or one task) the
/// executor degenerates to a plain sequential loop with no locking at all.
/// Panics in `init` or `run` propagate to the caller once all workers have
/// stopped (the underlying scoped threads re-raise on join).
pub fn run_indexed<S, R, I, F>(threads: usize, tasks: usize, init: I, run: F) -> RunOutcome<R>
where
    S: Send,
    R: Send,
    I: Fn(usize) -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    let workers = threads.clamp(1, tasks.max(1));
    if workers <= 1 {
        let mut state = init(0);
        let results = (0..tasks).map(|task| run(&mut state, task)).collect();
        return RunOutcome { results, stats: PoolStats { workers: 1, executed: vec![tasks], steals: 0 } };
    }

    // Initial distribution: contiguous blocks, so a steal-free run matches
    // the cache-friendly static split and task 0 starts on worker 0.
    let block = tasks.div_ceil(workers);
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|worker| {
            let start = worker * block;
            let end = tasks.min(start + block);
            Mutex::new((start..end.max(start)).collect())
        })
        .collect();

    // Result slots are index-addressed; each slot is written exactly once, by
    // whichever worker ran the task.
    let mut slots: Vec<Mutex<Option<R>>> = Vec::new();
    slots.resize_with(tasks, || Mutex::new(None));
    let executed: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
    let steals = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for worker in 0..workers {
            let deques = &deques;
            let slots = &slots;
            let executed = &executed;
            let steals = &steals;
            let init = &init;
            let run = &run;
            scope.spawn(move || {
                let mut state = init(worker);
                loop {
                    // Own deque first (front: the contiguous-block order),
                    // then scan siblings in a fixed rotation and steal from
                    // the back (the far end of *their* block).
                    let mut task = deques[worker].lock().expect("executor deque poisoned").pop_front();
                    if task.is_none() {
                        for offset in 1..workers {
                            let victim = (worker + offset) % workers;
                            let stolen = deques[victim].lock().expect("executor deque poisoned").pop_back();
                            if stolen.is_some() {
                                steals.fetch_add(1, Ordering::Relaxed);
                                task = stolen;
                                break;
                            }
                        }
                    }
                    // No task anywhere: all remaining tasks are in flight on
                    // other workers (nothing enqueues after start), so this
                    // worker is done.
                    let Some(task) = task else { break };
                    let result = run(&mut state, task);
                    *slots[task].lock().expect("executor slot poisoned") = Some(result);
                    executed[worker].fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    let results = slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("executor slot poisoned").expect("every task ran"))
        .collect();
    RunOutcome {
        results,
        stats: PoolStats {
            workers,
            executed: executed.iter().map(|count| count.load(Ordering::Relaxed) as usize).collect(),
            steals: steals.load(Ordering::Relaxed),
        },
    }
}

/// Run `tasks` task indices across `threads` workers with work stealing,
/// **streaming** each `(task_index, result)` pair to `consume` on the caller
/// thread as soon as it is produced, through a bounded channel of `capacity`
/// results.
///
/// This is the merge-while-crawling variant of [`run_indexed`]: instead of
/// buffering every result until the run finishes, the caller folds (or
/// persists) results while the workers are still computing. The channel is a
/// [`std::sync::mpsc::sync_channel`], so when `consume` falls behind by more
/// than `capacity` results the **workers block on send** — a slow consumer
/// applies backpressure to the producers instead of growing an unbounded
/// buffer.
///
/// Results arrive in **completion order**, which is timing-dependent; the
/// task index accompanies every result so an order-sensitive caller can
/// fold into index-addressed state (the shard store writes `results[i]` to
/// shard file `i`, which makes the on-disk outcome schedule-independent).
/// With `threads <= 1` the executor degenerates to a sequential loop that
/// calls `consume` inline after every task — completion order *is* task
/// order, and the channel is skipped entirely.
///
/// ```
/// use connreuse_executor::run_indexed_streaming;
///
/// let mut seen = vec![0usize; 20];
/// let stats = run_indexed_streaming(
///     4,
///     20,
///     2, // at most 2 undelivered results before workers block
///     |_worker| (),
///     |(), task| task * task,
///     |task, square| seen[task] = square,
/// );
/// assert_eq!(seen[7], 49);
/// assert_eq!(stats.executed.iter().sum::<usize>(), 20);
/// ```
pub fn run_indexed_streaming<S, R, I, F, C>(
    threads: usize,
    tasks: usize,
    capacity: usize,
    init: I,
    run: F,
    mut consume: C,
) -> PoolStats
where
    S: Send,
    R: Send,
    I: Fn(usize) -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
    C: FnMut(usize, R),
{
    let workers = threads.clamp(1, tasks.max(1));
    if workers <= 1 {
        let mut state = init(0);
        for task in 0..tasks {
            let result = run(&mut state, task);
            consume(task, result);
        }
        return PoolStats { workers: 1, executed: vec![tasks], steals: 0 };
    }

    let block = tasks.div_ceil(workers);
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|worker| {
            let start = worker * block;
            let end = tasks.min(start + block);
            Mutex::new((start..end.max(start)).collect())
        })
        .collect();
    let executed: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
    let steals = AtomicU64::new(0);

    let (sender, receiver) = mpsc::sync_channel::<(usize, R)>(capacity.max(1));
    std::thread::scope(|scope| {
        for worker in 0..workers {
            let deques = &deques;
            let executed = &executed;
            let steals = &steals;
            let init = &init;
            let run = &run;
            let sender = sender.clone();
            scope.spawn(move || {
                let mut state = init(worker);
                loop {
                    let mut task = deques[worker].lock().expect("executor deque poisoned").pop_front();
                    if task.is_none() {
                        for offset in 1..workers {
                            let victim = (worker + offset) % workers;
                            let stolen = deques[victim].lock().expect("executor deque poisoned").pop_back();
                            if stolen.is_some() {
                                steals.fetch_add(1, Ordering::Relaxed);
                                task = stolen;
                                break;
                            }
                        }
                    }
                    let Some(task) = task else { break };
                    let result = run(&mut state, task);
                    executed[worker].fetch_add(1, Ordering::Relaxed);
                    // Blocks while the channel holds `capacity` undelivered
                    // results: the consumer's pace bounds the producers'.
                    // Err means the receiver was dropped (consumer panicked);
                    // stop quietly and let the panic propagate from the
                    // caller thread.
                    if sender.send((task, result)).is_err() {
                        break;
                    }
                }
            });
        }
        // The workers own clones; dropping the original lets `recv` end once
        // every worker has finished sending.
        drop(sender);
        for (task, result) in receiver.iter() {
            consume(task, result);
        }
    });

    PoolStats {
        workers,
        executed: executed.iter().map(|count| count.load(Ordering::Relaxed) as usize).collect(),
        steals: steals.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_are_in_task_order_at_any_thread_count() {
        for threads in [1, 2, 3, 8, 64] {
            let outcome = run_indexed(threads, 37, |_| (), |(), task| task * 3);
            assert_eq!(outcome.results, (0..37).map(|task| task * 3).collect::<Vec<_>>());
            assert_eq!(outcome.stats.executed.iter().sum::<usize>(), 37);
            assert_eq!(outcome.stats.workers, threads.clamp(1, 37));
        }
    }

    #[test]
    fn zero_tasks_complete_immediately() {
        let outcome = run_indexed(8, 0, |_| (), |(), task| task);
        assert!(outcome.results.is_empty());
        assert_eq!(outcome.stats.workers, 1);
        assert_eq!(outcome.stats.steals, 0);
    }

    #[test]
    fn workers_clamp_to_the_task_count() {
        let outcome = run_indexed(16, 3, |_| (), |(), task| task);
        assert_eq!(outcome.stats.workers, 3);
        assert_eq!(outcome.results, vec![0, 1, 2]);
    }

    #[test]
    fn single_worker_needs_no_threads_and_sees_every_task() {
        let outcome = run_indexed(1, 10, |worker| worker, |state, task| (*state, task));
        assert_eq!(outcome.results, (0..10).map(|task| (0, task)).collect::<Vec<_>>());
        assert_eq!(outcome.stats.executed, vec![10]);
        assert_eq!(outcome.stats.steals, 0);
    }

    #[test]
    fn per_worker_state_is_initialised_once_and_reused() {
        // Count init calls; every task records which worker ran it via the
        // state handed to `run`.
        let inits = AtomicUsize::new(0);
        let outcome = run_indexed(
            4,
            64,
            |worker| {
                inits.fetch_add(1, Ordering::Relaxed);
                worker
            },
            |worker, task| (*worker, task),
        );
        assert_eq!(inits.load(Ordering::Relaxed), 4);
        for (task, (worker, echoed)) in outcome.results.iter().enumerate() {
            assert!(*worker < 4);
            assert_eq!(*echoed, task);
        }
    }

    #[test]
    fn skewed_workloads_are_stolen_from_the_slow_worker() {
        // Worker 0's initial block starts with one long task; the others'
        // blocks are all trivial. While worker 0 sleeps, its siblings drain
        // their own deques and then steal the rest of worker 0's block.
        let outcome = run_indexed(
            4,
            64,
            |_| (),
            |(), task| {
                if task == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(60));
                }
                task
            },
        );
        assert_eq!(outcome.results, (0..64).collect::<Vec<_>>());
        assert!(outcome.stats.steals > 0, "expected steals from the sleeping worker's deque");
        // The sleeping worker cannot have run its whole 16-task block.
        assert!(outcome.stats.executed[0] < 16, "worker 0 executed {}", outcome.stats.executed[0]);
    }

    #[test]
    fn stats_report_the_schedule_not_the_results() {
        let outcome = run_indexed(3, 30, |_| (), |(), task| task);
        assert_eq!(outcome.stats.executed.len(), 3);
        assert_eq!(outcome.stats.executed.iter().sum::<usize>(), 30);
    }

    #[test]
    fn streaming_delivers_every_result_exactly_once() {
        for threads in [1, 2, 4, 16] {
            let mut seen = vec![None; 53];
            let stats = run_indexed_streaming(
                threads,
                53,
                3,
                |_| (),
                |(), task| task * 7,
                |task, result| {
                    assert!(seen[task].is_none(), "task {task} delivered twice");
                    seen[task] = Some(result);
                },
            );
            assert_eq!(stats.executed.iter().sum::<usize>(), 53);
            for (task, slot) in seen.iter().enumerate() {
                assert_eq!(*slot, Some(task * 7));
            }
        }
    }

    #[test]
    fn streaming_sequential_path_consumes_in_task_order() {
        let mut order = Vec::new();
        let stats = run_indexed_streaming(1, 9, 1, |_| (), |(), task| task, |task, _| order.push(task));
        assert_eq!(order, (0..9).collect::<Vec<_>>());
        assert_eq!(stats.workers, 1);
    }

    #[test]
    fn streaming_folds_to_the_same_totals_as_the_buffered_run() {
        // Index-addressed fold: completion order must not matter.
        let buffered: usize = run_indexed(4, 40, |_| (), |(), task| task * task).results.iter().sum();
        let mut streamed = 0usize;
        run_indexed_streaming(4, 40, 2, |_| (), |(), task| task * task, |_, result| streamed += result);
        assert_eq!(streamed, buffered);
    }

    #[test]
    fn streaming_slow_consumer_bounds_in_flight_results() {
        // With capacity 1, at most `workers + 1` results can exist
        // unconsumed (one in the channel, one finished-but-blocked per
        // worker). Track the high-water mark of produced-minus-consumed.
        let produced = AtomicUsize::new(0);
        let high_water = AtomicUsize::new(0);
        let mut consumed = 0usize;
        let workers = 4;
        run_indexed_streaming(
            workers,
            32,
            1,
            |_| (),
            |(), task| {
                let in_flight = produced.fetch_add(1, Ordering::SeqCst) + 1;
                high_water.fetch_max(in_flight, Ordering::SeqCst);
                task
            },
            |_, _| {
                consumed += 1;
                produced.fetch_sub(1, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(1));
            },
        );
        assert_eq!(consumed, 32);
        // capacity(1) + one blocked send per worker + one mid-run per worker.
        assert!(
            high_water.load(Ordering::SeqCst) <= 1 + 2 * workers,
            "high water {} exceeds the backpressure bound",
            high_water.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn streaming_zero_tasks_complete_immediately() {
        let mut calls = 0;
        let stats = run_indexed_streaming(8, 0, 4, |_| (), |(), task| task, |_, _| calls += 1);
        assert_eq!(calls, 0);
        assert_eq!(stats.workers, 1);
    }
}
