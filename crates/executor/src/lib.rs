//! # connreuse-executor
//!
//! A **work-stealing chunk executor** with deterministic, index-addressed
//! results — the scheduling layer under the atlas scale scenario (and any
//! other embarrassingly-parallel, chunk-shaped workload in the workspace).
//!
//! ## Why work stealing
//!
//! The atlas population is processed in fixed-size chunks whose cost is
//! *skewed*: Zipf-mixed head chunks plan several times the requests of deep
//! tail chunks. A static contiguous split (what the pipeline used before this
//! crate existed) finishes when its **slowest** worker does, leaving the other
//! cores idle for the tail of the run. Here every worker owns a deque of task
//! indices; it pops work from the *front* of its own deque and, when that runs
//! dry, **steals from the back** of a sibling's — so the expensive head chunks
//! naturally spread over all workers and the run finishes when the *total*
//! work does.
//!
//! ## Determinism contract
//!
//! Scheduling decides only *who* runs a task and *when* — never what the task
//! computes or where its result lands:
//!
//! * tasks are identified by their index `0..tasks`, and `results[i]` is
//!   always the value task `i` returned, regardless of which worker ran it or
//!   in what order;
//! * the executor itself introduces no randomness: initial deques are
//!   contiguous index blocks, steal victims are scanned in a fixed rotation;
//! * per-worker state (`init`) lets callers keep scratch arenas and memo
//!   tables thread-local without any locking in the task body.
//!
//! A caller whose task function is a pure function of the task index therefore
//! gets **byte-identical output at any thread count** — the property the
//! atlas report's thread-invariance tests pin end to end.
//!
//! ```
//! use connreuse_executor::run_indexed;
//!
//! // Square 100 numbers on 4 workers, each with a (here trivial) worker
//! // state. Results come back in task order, not completion order.
//! let outcome = run_indexed(4, 100, |_worker| (), |(), task| task * task);
//! assert_eq!(outcome.results[7], 49);
//! assert_eq!(outcome.stats.executed.iter().sum::<usize>(), 100);
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Scheduling telemetry of one [`run_indexed`] call.
///
/// The stats describe the *schedule*, which is timing-dependent — two runs of
/// the same workload may distribute tasks differently. Callers must keep them
/// out of any deterministic report (the atlas carries them in its
/// wall-clock-only metrics block, next to throughput and peak RSS).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads the run actually used (after clamping to the task
    /// count; a `threads <= 1` run reports a single worker).
    pub workers: usize,
    /// Tasks each worker executed, indexed by worker; sums to the task count.
    pub executed: Vec<usize>,
    /// Tasks that ran on a worker other than the one whose deque initially
    /// held them. 0 on a perfectly balanced run; grows with cost skew.
    pub steals: u64,
}

/// Results and scheduling stats of one [`run_indexed`] call.
#[derive(Clone, Debug)]
pub struct RunOutcome<R> {
    /// `results[i]` is what the task function returned for task `i` —
    /// independent of worker count and steal schedule.
    pub results: Vec<R>,
    /// How the run was scheduled (timing-dependent; see [`PoolStats`]).
    pub stats: PoolStats,
}

/// Run `tasks` task indices across `threads` workers with work stealing.
///
/// `init(worker_index)` builds each worker's private state once (scratch
/// arenas, classifiers, caches); `run(&mut state, task_index)` executes one
/// task and its return value is stored at `results[task_index]`.
///
/// `threads` is clamped to `1..=tasks`; with one worker (or one task) the
/// executor degenerates to a plain sequential loop with no locking at all.
/// Panics in `init` or `run` propagate to the caller once all workers have
/// stopped (the underlying scoped threads re-raise on join).
pub fn run_indexed<S, R, I, F>(threads: usize, tasks: usize, init: I, run: F) -> RunOutcome<R>
where
    S: Send,
    R: Send,
    I: Fn(usize) -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    let workers = threads.clamp(1, tasks.max(1));
    if workers <= 1 {
        let mut state = init(0);
        let results = (0..tasks).map(|task| run(&mut state, task)).collect();
        return RunOutcome { results, stats: PoolStats { workers: 1, executed: vec![tasks], steals: 0 } };
    }

    // Initial distribution: contiguous blocks, so a steal-free run matches
    // the cache-friendly static split and task 0 starts on worker 0.
    let block = tasks.div_ceil(workers);
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|worker| {
            let start = worker * block;
            let end = tasks.min(start + block);
            Mutex::new((start..end.max(start)).collect())
        })
        .collect();

    // Result slots are index-addressed; each slot is written exactly once, by
    // whichever worker ran the task.
    let mut slots: Vec<Mutex<Option<R>>> = Vec::new();
    slots.resize_with(tasks, || Mutex::new(None));
    let executed: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
    let steals = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for worker in 0..workers {
            let deques = &deques;
            let slots = &slots;
            let executed = &executed;
            let steals = &steals;
            let init = &init;
            let run = &run;
            scope.spawn(move || {
                let mut state = init(worker);
                loop {
                    // Own deque first (front: the contiguous-block order),
                    // then scan siblings in a fixed rotation and steal from
                    // the back (the far end of *their* block).
                    let mut task = deques[worker].lock().expect("executor deque poisoned").pop_front();
                    if task.is_none() {
                        for offset in 1..workers {
                            let victim = (worker + offset) % workers;
                            let stolen = deques[victim].lock().expect("executor deque poisoned").pop_back();
                            if stolen.is_some() {
                                steals.fetch_add(1, Ordering::Relaxed);
                                task = stolen;
                                break;
                            }
                        }
                    }
                    // No task anywhere: all remaining tasks are in flight on
                    // other workers (nothing enqueues after start), so this
                    // worker is done.
                    let Some(task) = task else { break };
                    let result = run(&mut state, task);
                    *slots[task].lock().expect("executor slot poisoned") = Some(result);
                    executed[worker].fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    let results = slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("executor slot poisoned").expect("every task ran"))
        .collect();
    RunOutcome {
        results,
        stats: PoolStats {
            workers,
            executed: executed.iter().map(|count| count.load(Ordering::Relaxed) as usize).collect(),
            steals: steals.load(Ordering::Relaxed),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_are_in_task_order_at_any_thread_count() {
        for threads in [1, 2, 3, 8, 64] {
            let outcome = run_indexed(threads, 37, |_| (), |(), task| task * 3);
            assert_eq!(outcome.results, (0..37).map(|task| task * 3).collect::<Vec<_>>());
            assert_eq!(outcome.stats.executed.iter().sum::<usize>(), 37);
            assert_eq!(outcome.stats.workers, threads.clamp(1, 37));
        }
    }

    #[test]
    fn zero_tasks_complete_immediately() {
        let outcome = run_indexed(8, 0, |_| (), |(), task| task);
        assert!(outcome.results.is_empty());
        assert_eq!(outcome.stats.workers, 1);
        assert_eq!(outcome.stats.steals, 0);
    }

    #[test]
    fn workers_clamp_to_the_task_count() {
        let outcome = run_indexed(16, 3, |_| (), |(), task| task);
        assert_eq!(outcome.stats.workers, 3);
        assert_eq!(outcome.results, vec![0, 1, 2]);
    }

    #[test]
    fn single_worker_needs_no_threads_and_sees_every_task() {
        let outcome = run_indexed(1, 10, |worker| worker, |state, task| (*state, task));
        assert_eq!(outcome.results, (0..10).map(|task| (0, task)).collect::<Vec<_>>());
        assert_eq!(outcome.stats.executed, vec![10]);
        assert_eq!(outcome.stats.steals, 0);
    }

    #[test]
    fn per_worker_state_is_initialised_once_and_reused() {
        // Count init calls; every task records which worker ran it via the
        // state handed to `run`.
        let inits = AtomicUsize::new(0);
        let outcome = run_indexed(
            4,
            64,
            |worker| {
                inits.fetch_add(1, Ordering::Relaxed);
                worker
            },
            |worker, task| (*worker, task),
        );
        assert_eq!(inits.load(Ordering::Relaxed), 4);
        for (task, (worker, echoed)) in outcome.results.iter().enumerate() {
            assert!(*worker < 4);
            assert_eq!(*echoed, task);
        }
    }

    #[test]
    fn skewed_workloads_are_stolen_from_the_slow_worker() {
        // Worker 0's initial block starts with one long task; the others'
        // blocks are all trivial. While worker 0 sleeps, its siblings drain
        // their own deques and then steal the rest of worker 0's block.
        let outcome = run_indexed(
            4,
            64,
            |_| (),
            |(), task| {
                if task == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(60));
                }
                task
            },
        );
        assert_eq!(outcome.results, (0..64).collect::<Vec<_>>());
        assert!(outcome.stats.steals > 0, "expected steals from the sleeping worker's deque");
        // The sleeping worker cannot have run its whole 16-task block.
        assert!(outcome.stats.executed[0] < 16, "worker 0 executed {}", outcome.stats.executed[0]);
    }

    #[test]
    fn stats_report_the_schedule_not_the_results() {
        let outcome = run_indexed(3, 30, |_| (), |(), task| task);
        assert_eq!(outcome.stats.executed.len(), 3);
        assert_eq!(outcome.stats.executed.iter().sum::<usize>(), 30);
    }
}
