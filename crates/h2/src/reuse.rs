//! The RFC 7540 §9.1.1 Connection Reuse predicate.
//!
//! A request for origin `O` may be sent on an existing connection `C` when
//!
//! 1. the scheme and port match,
//! 2. `C`'s destination IP equals the IP that `O`'s host resolves to, and
//! 3. the certificate presented on `C` is valid for `O`'s host,
//!
//! unless the server has excluded the host via HTTP 421. RFC 8336 extends
//! this: if the server announced an origin set, membership in the set can
//! substitute for the IP equality check. On top of the RFC rules, browsers
//! following the WHATWG Fetch Standard additionally require the *credentials
//! partition* to match — the mechanism behind the paper's `CRED` cause.
//!
//! [`evaluate`] returns either `Reusable` or the complete list of reasons
//! reuse fails. Keeping *all* failing conditions (not just the first) is what
//! allows the analysis layer to attribute one redundant connection to several
//! root causes, exactly as described in §4.1 of the paper.

use crate::connection::{Connection, ConnectionState};
use netsim_types::{DomainName, IpAddr, Mitigation, MitigationSet, Origin};
use serde::{Deserialize, Serialize};

/// A single reason why an existing connection cannot serve a new request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ReuseRefusal {
    /// Scheme or port differ.
    SchemePortMismatch,
    /// The new request's host resolves to a different destination IP
    /// (and no origin-set membership overrides it) — the paper's `IP` cause.
    IpMismatch,
    /// The connection's certificate does not cover the host — the `CERT`
    /// cause.
    CertificateMismatch,
    /// The server answered 421 for this host earlier on this connection.
    ExcludedByServer,
    /// The server announced an RFC 8336 origin set that does not contain the
    /// host, so the client should not coalesce onto this connection.
    NotInOriginSet,
    /// The Fetch Standard credentials partition differs (credentialed vs.
    /// credential-less) — the `CRED` cause.
    CredentialsMismatch,
    /// The connection is draining (GOAWAY received) or closed.
    NotAcceptingStreams,
    /// The peer's concurrent-stream limit leaves no room for another stream.
    ConcurrencyExhausted,
}

impl ReuseRefusal {
    /// All refusal reasons in declaration (= `Ord`) order.
    pub const ALL: [ReuseRefusal; 8] = [
        ReuseRefusal::SchemePortMismatch,
        ReuseRefusal::IpMismatch,
        ReuseRefusal::CertificateMismatch,
        ReuseRefusal::ExcludedByServer,
        ReuseRefusal::NotInOriginSet,
        ReuseRefusal::CredentialsMismatch,
        ReuseRefusal::NotAcceptingStreams,
        ReuseRefusal::ConcurrencyExhausted,
    ];

    /// The bit this reason occupies in a [`RefusalSet`].
    const fn bit(self) -> u16 {
        1 << (self as u16)
    }
}

/// A set of [`ReuseRefusal`]s packed into one copyable word — the
/// allocation-free result the visit fast path keeps per candidate
/// connection. Iteration order equals the sorted order of the equivalent
/// deduplicated vector, so [`RefusalSet::to_vec`] reproduces exactly what
/// [`evaluate`] reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RefusalSet(u16);

impl RefusalSet {
    /// The empty set (reuse allowed).
    pub const EMPTY: RefusalSet = RefusalSet(0);

    /// Add a reason.
    pub fn insert(&mut self, reason: ReuseRefusal) {
        self.0 |= reason.bit();
    }

    /// `true` if no reason is present (the connection is reusable).
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// `true` if `reason` is present.
    pub fn contains(self, reason: ReuseRefusal) -> bool {
        self.0 & reason.bit() != 0
    }

    /// Number of distinct reasons.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// The reasons in `Ord` order.
    pub fn iter(self) -> impl Iterator<Item = ReuseRefusal> {
        ReuseRefusal::ALL.into_iter().filter(move |reason| self.contains(*reason))
    }

    /// Materialise as the sorted, deduplicated vector [`evaluate`] reports.
    pub fn to_vec(self) -> Vec<ReuseRefusal> {
        self.iter().collect()
    }

    /// The decision this set denotes.
    pub fn decision(self) -> ReuseDecision {
        if self.is_empty() {
            ReuseDecision::Reusable
        } else {
            ReuseDecision::Refused(self.to_vec())
        }
    }
}

/// The outcome of a reuse check.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReuseDecision {
    /// The request may ride the existing connection.
    Reusable,
    /// The request may not; every failing condition is listed.
    Refused(Vec<ReuseRefusal>),
}

impl ReuseDecision {
    /// `true` if reuse is allowed.
    pub fn is_reusable(&self) -> bool {
        matches!(self, ReuseDecision::Reusable)
    }

    /// The refusal reasons (empty when reusable).
    pub fn refusals(&self) -> &[ReuseRefusal] {
        match self {
            ReuseDecision::Reusable => &[],
            ReuseDecision::Refused(reasons) => reasons,
        }
    }

    /// `true` if `reason` is among the refusals.
    pub fn refused_because(&self, reason: ReuseRefusal) -> bool {
        self.refusals().contains(&reason)
    }
}

/// Policy knobs governing the reuse check. Defaults model Chromium 87 as used
/// in the paper's measurements: the Fetch credentials partition is enforced
/// and ORIGIN frames are ignored.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReusePolicy {
    /// Enforce the Fetch Standard credentials partition ("privacy mode").
    /// Disabling this reproduces the paper's "Alexa w/o Fetch" run.
    pub follow_fetch_credentials: bool,
    /// Honour RFC 8336 ORIGIN frames (Chromium does not).
    pub honor_origin_frame: bool,
    /// RFC 8336 §2.4 strictness when `honor_origin_frame` is set: if `true`,
    /// a host *absent* from an announced origin set refuses coalescing
    /// outright ([`ReuseRefusal::NotInOriginSet`]); if `false`, absence
    /// merely withholds the IP-check substitution and the normal RFC 7540
    /// rules apply. The relaxed mode is what the mitigation sweep uses — it
    /// makes enabling ORIGIN frames a pure relaxation of the predicate
    /// (reuse decisions stay monotone under mitigation).
    pub strict_origin_set: bool,
    /// Require the destination IP to match (the RFC rule). Only disabled in
    /// what-if ablations together with `honor_origin_frame`.
    pub require_ip_match: bool,
}

impl Default for ReusePolicy {
    fn default() -> Self {
        ReusePolicy {
            follow_fetch_credentials: true,
            honor_origin_frame: false,
            strict_origin_set: true,
            require_ip_match: true,
        }
    }
}

impl ReusePolicy {
    /// The Chromium-87 behaviour used in the paper's main measurement.
    pub fn chromium() -> Self {
        ReusePolicy::default()
    }

    /// Chromium patched to ignore the Fetch credentials flag (the paper's
    /// second Alexa run, "Alexa w/o Fetch").
    pub fn chromium_without_fetch() -> Self {
        ReusePolicy { follow_fetch_credentials: false, ..ReusePolicy::default() }
    }

    /// A hypothetical client that fully implements RFC 8336, including the
    /// strict must-not-coalesce rule for hosts outside an origin set.
    pub fn with_origin_frame() -> Self {
        ReusePolicy { honor_origin_frame: true, ..ReusePolicy::default() }
    }

    /// The policy a client runs when the given mitigations are deployed:
    /// [`Mitigation::OriginFrames`] honours origin sets in relaxed mode (a
    /// pure relaxation of the predicate) and [`Mitigation::CredentialPooling`]
    /// drops the Fetch credentials partition. The environment-side
    /// mitigations (DNS synchronization, certificate coalescing) do not
    /// change the client policy — they change what the client observes.
    ///
    /// Enabling any mitigation only ever *removes* refusal reasons: for all
    /// sets `S ⊆ T`, `refusals(with_mitigations(T)) ⊆
    /// refusals(with_mitigations(S))` on every connection/request pair (the
    /// monotonicity property tested in `tests/properties.rs`).
    pub fn with_mitigations(mitigations: MitigationSet) -> Self {
        ReusePolicy {
            follow_fetch_credentials: !mitigations.contains(Mitigation::CredentialPooling),
            honor_origin_frame: mitigations.contains(Mitigation::OriginFrames),
            strict_origin_set: false,
            require_ip_match: true,
        }
    }
}

/// Evaluate whether `connection` can carry a request for `target` origin that
/// resolves to `target_ip` and whose Fetch credentials mode is
/// `request_credentialed`.
pub fn evaluate(
    connection: &Connection,
    target: &Origin,
    target_ip: IpAddr,
    request_credentialed: bool,
    policy: &ReusePolicy,
) -> ReuseDecision {
    evaluate_set(connection, target, target_ip, request_credentialed, policy).decision()
}

/// Allocation-free form of [`evaluate`]: the complete refusal set packed in
/// one word (empty = reusable). This is what the visit fast path calls per
/// candidate connection.
pub fn evaluate_set(
    connection: &Connection,
    target: &Origin,
    target_ip: IpAddr,
    request_credentialed: bool,
    policy: &ReusePolicy,
) -> RefusalSet {
    let mut refusals = RefusalSet::EMPTY;

    if !connection.initial_origin.same_scheme_port(target) {
        refusals.insert(ReuseRefusal::SchemePortMismatch);
    }

    if connection.state != ConnectionState::Open {
        refusals.insert(ReuseRefusal::NotAcceptingStreams);
    } else if !connection.can_open_stream() {
        refusals.insert(ReuseRefusal::ConcurrencyExhausted);
    }

    if connection.excluded_domains.contains(&target.host) {
        refusals.insert(ReuseRefusal::ExcludedByServer);
    }

    if !connection.certificate.covers(&target.host) {
        refusals.insert(ReuseRefusal::CertificateMismatch);
    }

    let origin_set_match = origin_set_contains(connection, &target.host);
    match origin_set_match {
        // Origin-set membership substitutes for the IP check (RFC 8336).
        Some(true) if policy.honor_origin_frame => {}
        // Absent from an announced set: strict clients refuse outright (and
        // skip the IP rule, which membership would have replaced); relaxed
        // clients simply fall back to the plain RFC 7540 IP check.
        Some(false) if policy.honor_origin_frame && policy.strict_origin_set => {
            refusals.insert(ReuseRefusal::NotInOriginSet);
        }
        _ => {
            if policy.require_ip_match && connection.remote_ip != target_ip {
                refusals.insert(ReuseRefusal::IpMismatch);
            }
        }
    }

    if policy.follow_fetch_credentials && connection.credentialed != request_credentialed {
        refusals.insert(ReuseRefusal::CredentialsMismatch);
    }

    refusals
}

/// Whether the connection's origin set (if announced) contains `host`.
fn origin_set_contains(connection: &Connection, host: &DomainName) -> Option<bool> {
    connection.origin_set.as_ref().map(|set| set.contains(host))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connection::Connection;
    use crate::settings::Settings;
    use netsim_tls::{CertificateStore, IssuancePolicy, Issuer};
    use netsim_types::{ConnectionId, Instant};

    fn d(s: &str) -> DomainName {
        DomainName::literal(s)
    }

    fn conn(cert_domains: &[&str], ip: IpAddr, credentialed: bool) -> Connection {
        let mut store = CertificateStore::new();
        let names: Vec<DomainName> = cert_domains.iter().map(|s| d(s)).collect();
        let ids = store.issue_with_policy(
            Issuer::google_trust_services(),
            &IssuancePolicy::SharedSan,
            &names,
            Instant::EPOCH,
        );
        Connection::establish(
            ConnectionId(1),
            Origin::https(names[0]),
            ip,
            std::sync::Arc::clone(store.get_arc(ids[0]).unwrap()),
            credentialed,
            Instant::EPOCH,
            Settings::default(),
        )
    }

    const IP_A: IpAddr = IpAddr::new(142, 250, 74, 10);
    const IP_B: IpAddr = IpAddr::new(142, 250, 74, 77);

    #[test]
    fn reusable_when_everything_matches() {
        let c = conn(&["www.googletagmanager.com", "www.google-analytics.com"], IP_A, true);
        let decision =
            evaluate(&c, &Origin::https(d("www.google-analytics.com")), IP_A, true, &ReusePolicy::chromium());
        assert!(decision.is_reusable());
        assert!(decision.refusals().is_empty());
    }

    #[test]
    fn ip_mismatch_is_the_paper_ip_cause() {
        let c = conn(&["www.googletagmanager.com", "www.google-analytics.com"], IP_A, true);
        let decision =
            evaluate(&c, &Origin::https(d("www.google-analytics.com")), IP_B, true, &ReusePolicy::chromium());
        assert_eq!(decision, ReuseDecision::Refused(vec![ReuseRefusal::IpMismatch]));
    }

    #[test]
    fn certificate_mismatch_is_the_cert_cause() {
        let c = conn(&["static.klaviyo.com"], IP_A, true);
        let decision =
            evaluate(&c, &Origin::https(d("fast.a.klaviyo.com")), IP_A, true, &ReusePolicy::chromium());
        assert_eq!(decision, ReuseDecision::Refused(vec![ReuseRefusal::CertificateMismatch]));
    }

    #[test]
    fn credentials_partition_is_the_cred_cause() {
        let c = conn(&["fonts.gstatic.com", "www.gstatic.com"], IP_A, true);
        // Cross-origin font fetch: no credentials, same IP, covered by SAN.
        let strict =
            evaluate(&c, &Origin::https(d("fonts.gstatic.com")), IP_A, false, &ReusePolicy::chromium());
        assert_eq!(strict, ReuseDecision::Refused(vec![ReuseRefusal::CredentialsMismatch]));
        // The patched browser ("Alexa w/o Fetch") reuses it.
        let patched = evaluate(
            &c,
            &Origin::https(d("fonts.gstatic.com")),
            IP_A,
            false,
            &ReusePolicy::chromium_without_fetch(),
        );
        assert!(patched.is_reusable());
    }

    #[test]
    fn multiple_reasons_are_all_reported() {
        let c = conn(&["static.klaviyo.com"], IP_A, true);
        let decision =
            evaluate(&c, &Origin::https(d("fast.a.klaviyo.com")), IP_B, false, &ReusePolicy::chromium());
        assert!(decision.refused_because(ReuseRefusal::CertificateMismatch));
        assert!(decision.refused_because(ReuseRefusal::IpMismatch));
        assert!(decision.refused_because(ReuseRefusal::CredentialsMismatch));
        assert_eq!(decision.refusals().len(), 3);
    }

    #[test]
    fn http_421_exclusion_blocks_reuse() {
        let mut c = conn(&["www.example.com", "api.example.com"], IP_A, true);
        let stream = c.send_request(&d("api.example.com"), "/v1", None).unwrap();
        c.complete_response(stream, &d("api.example.com"), 421, 0).unwrap();
        let decision =
            evaluate(&c, &Origin::https(d("api.example.com")), IP_A, true, &ReusePolicy::chromium());
        assert!(decision.refused_because(ReuseRefusal::ExcludedByServer));
    }

    #[test]
    fn origin_frame_substitutes_for_ip_match_when_honored() {
        let mut c = conn(&["cdn.example.com", "img.example.com"], IP_A, true);
        c.receive_origin_set([d("img.example.com")]);
        // Different IP, but origin-set membership + cert coverage suffice
        // when the client honours RFC 8336.
        let honored =
            evaluate(&c, &Origin::https(d("img.example.com")), IP_B, true, &ReusePolicy::with_origin_frame());
        assert!(honored.is_reusable());
        // Chromium ignores the frame, so the IP mismatch still refuses reuse.
        let chromium =
            evaluate(&c, &Origin::https(d("img.example.com")), IP_B, true, &ReusePolicy::chromium());
        assert_eq!(chromium, ReuseDecision::Refused(vec![ReuseRefusal::IpMismatch]));
    }

    #[test]
    fn origin_frame_restricts_non_members() {
        let mut c = conn(&["cdn.example.com", "img.example.com", "other.example.com"], IP_A, true);
        c.receive_origin_set([d("img.example.com")]);
        let decision = evaluate(
            &c,
            &Origin::https(d("other.example.com")),
            IP_A,
            true,
            &ReusePolicy::with_origin_frame(),
        );
        assert!(decision.refused_because(ReuseRefusal::NotInOriginSet));
    }

    #[test]
    fn mitigation_policy_with_empty_set_is_chromium() {
        assert_eq!(
            ReusePolicy::with_mitigations(MitigationSet::empty()),
            ReusePolicy { strict_origin_set: false, ..ReusePolicy::chromium() }
        );
        let c = conn(&["www.example.com"], IP_A, true);
        // Without an announced origin set the strictness flag is inert.
        let decision = evaluate(
            &c,
            &Origin::https(d("www.example.com")),
            IP_B,
            true,
            &ReusePolicy::with_mitigations(MitigationSet::empty()),
        );
        assert_eq!(decision, ReuseDecision::Refused(vec![ReuseRefusal::IpMismatch]));
    }

    #[test]
    fn relaxed_origin_set_honoring_never_adds_refusals() {
        let mut c = conn(&["cdn.example.com", "img.example.com", "other.example.com"], IP_A, true);
        c.receive_origin_set([d("img.example.com")]);
        let relaxed = ReusePolicy::with_mitigations(MitigationSet::single(Mitigation::OriginFrames));
        // Membership substitutes for the IP check, as in strict mode.
        assert!(evaluate(&c, &Origin::https(d("img.example.com")), IP_B, true, &relaxed).is_reusable());
        // Non-members fall back to the IP rule instead of refusing outright.
        assert!(evaluate(&c, &Origin::https(d("other.example.com")), IP_A, true, &relaxed).is_reusable());
        let mismatch = evaluate(&c, &Origin::https(d("other.example.com")), IP_B, true, &relaxed);
        assert_eq!(mismatch, ReuseDecision::Refused(vec![ReuseRefusal::IpMismatch]));
        // The strict RFC 8336 client still refuses the same non-member.
        let strict = evaluate(
            &c,
            &Origin::https(d("other.example.com")),
            IP_A,
            true,
            &ReusePolicy::with_origin_frame(),
        );
        assert!(strict.refused_because(ReuseRefusal::NotInOriginSet));
    }

    #[test]
    fn credential_pooling_mitigation_drops_the_cred_refusal() {
        let c = conn(&["fonts.gstatic.com", "www.gstatic.com"], IP_A, true);
        let pooled = ReusePolicy::with_mitigations(MitigationSet::single(Mitigation::CredentialPooling));
        assert!(evaluate(&c, &Origin::https(d("fonts.gstatic.com")), IP_A, false, &pooled).is_reusable());
    }

    #[test]
    fn scheme_port_and_lifecycle_checks() {
        let mut c = conn(&["www.example.com"], IP_A, true);
        let other_port = Origin::new(netsim_types::Scheme::Https, d("www.example.com"), 8443);
        let decision = evaluate(&c, &other_port, IP_A, true, &ReusePolicy::chromium());
        assert!(decision.refused_because(ReuseRefusal::SchemePortMismatch));
        c.receive_goaway();
        let draining =
            evaluate(&c, &Origin::https(d("www.example.com")), IP_A, true, &ReusePolicy::chromium());
        assert!(draining.refused_because(ReuseRefusal::NotAcceptingStreams));
    }

    #[test]
    fn concurrency_exhaustion_refuses_reuse() {
        let mut c = conn(&["www.example.com"], IP_A, true);
        c.remote_settings.max_concurrent_streams = 1;
        c.send_request(&d("www.example.com"), "/", None).unwrap();
        let decision =
            evaluate(&c, &Origin::https(d("www.example.com")), IP_A, true, &ReusePolicy::chromium());
        assert!(decision.refused_because(ReuseRefusal::ConcurrencyExhausted));
    }
}
