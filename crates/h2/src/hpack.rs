//! A compact HPACK model (RFC 7541).
//!
//! The paper (and the related work it cites, e.g. Marx et al.) points out
//! that one hidden cost of redundant connections is that **header compression
//! loses its dictionary**: every new connection starts with an empty dynamic
//! table, so the first requests on it pay full header bytes again. This
//! module implements enough of HPACK — the static table, a FIFO dynamic table
//! with size accounting, indexed and literal representations with integer
//! prefix coding — to measure that effect, while skipping Huffman coding
//! (sizes are reported un-Huffman-coded, a conservative over-estimate on both
//! sides of any comparison).

use serde::{Deserialize, Serialize};
use std::fmt;

/// One HTTP header field.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Header {
    /// Lower-case field name (pseudo-headers keep their leading `:`).
    pub name: String,
    /// Field value.
    pub value: String,
}

impl Header {
    /// Construct a header, lower-casing the name.
    pub fn new(name: &str, value: &str) -> Self {
        Header { name: name.to_ascii_lowercase(), value: value.to_string() }
    }

    /// The HPACK size of the entry: name + value + 32 octets of overhead
    /// (RFC 7541 §4.1).
    pub fn hpack_size(&self) -> usize {
        self.name.len() + self.value.len() + 32
    }
}

impl fmt::Debug for Header {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.value)
    }
}

/// The portion of the RFC 7541 Appendix A static table that request encoding
/// actually hits, with original indices preserved.
const STATIC_TABLE: &[(usize, &str, &str)] = &[
    (1, ":authority", ""),
    (2, ":method", "GET"),
    (3, ":method", "POST"),
    (4, ":path", "/"),
    (5, ":path", "/index.html"),
    (6, ":scheme", "http"),
    (7, ":scheme", "https"),
    (8, ":status", "200"),
    (13, ":status", "404"),
    (14, ":status", "500"),
    (15, "accept-charset", ""),
    (16, "accept-encoding", "gzip, deflate"),
    (17, "accept-language", ""),
    (19, "accept", ""),
    (23, "cache-control", ""),
    (28, "content-length", ""),
    (31, "content-type", ""),
    (32, "cookie", ""),
    (33, "date", ""),
    (38, "host", ""),
    (46, "referer", ""),
    (58, "user-agent", ""),
];

/// Number of entries in the full RFC 7541 static table.
const STATIC_TABLE_LEN: usize = 61;

/// Default maximum dynamic-table size (SETTINGS_HEADER_TABLE_SIZE default).
pub const DEFAULT_DYNAMIC_TABLE_SIZE: usize = 4096;

/// How a single header field was represented on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
enum Representation {
    /// Fully indexed (static or dynamic table hit).
    Indexed(usize),
    /// Literal with incremental indexing; the name may be indexed.
    LiteralWithIndexing { name_index: Option<usize> },
}

/// One endpoint's HPACK encoder/decoder state (the dynamic table).
///
/// The simulation uses a shared context per connection direction; encoding a
/// header list both returns the encoded size and updates the table exactly as
/// a real encoder would, so repeated requests on the *same* connection get
/// cheaper while a *new* connection starts from scratch.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HpackContext {
    dynamic: Vec<Header>,
    max_size: usize,
    current_size: usize,
    /// Total octets that crossed the wire through this context.
    pub encoded_octets: u64,
    /// Octets the headers would have cost uncompressed (name: value\r\n).
    pub uncompressed_octets: u64,
}

impl Default for HpackContext {
    fn default() -> Self {
        Self::new(DEFAULT_DYNAMIC_TABLE_SIZE)
    }
}

impl HpackContext {
    /// A context with the given maximum dynamic-table size.
    pub fn new(max_size: usize) -> Self {
        HpackContext {
            dynamic: Vec::new(),
            max_size,
            current_size: 0,
            encoded_octets: 0,
            uncompressed_octets: 0,
        }
    }

    /// Number of entries currently in the dynamic table.
    pub fn dynamic_entries(&self) -> usize {
        self.dynamic.len()
    }

    /// Current dynamic-table size in octets (RFC 7541 accounting).
    pub fn dynamic_size(&self) -> usize {
        self.current_size
    }

    /// The compression ratio achieved so far (encoded / uncompressed), or 1.0
    /// if nothing has been encoded.
    pub fn compression_ratio(&self) -> f64 {
        if self.uncompressed_octets == 0 {
            1.0
        } else {
            self.encoded_octets as f64 / self.uncompressed_octets as f64
        }
    }

    fn lookup(&self, header: &Header) -> Representation {
        // Exact match in the static table?
        for (index, name, value) in STATIC_TABLE {
            if *name == header.name && *value == header.value && !value.is_empty() {
                return Representation::Indexed(*index);
            }
        }
        // Exact match in the dynamic table? Index space continues after the
        // static table (most recent insertion = lowest dynamic index).
        for (offset, entry) in self.dynamic.iter().enumerate() {
            if entry == header {
                return Representation::Indexed(STATIC_TABLE_LEN + 1 + offset);
            }
        }
        // Name-only match (static first, then dynamic)?
        let name_index = STATIC_TABLE
            .iter()
            .find(|(_, name, _)| *name == header.name)
            .map(|(index, _, _)| *index)
            .or_else(|| {
                self.dynamic
                    .iter()
                    .position(|entry| entry.name == header.name)
                    .map(|offset| STATIC_TABLE_LEN + 1 + offset)
            });
        Representation::LiteralWithIndexing { name_index }
    }

    fn insert(&mut self, header: Header) {
        let size = header.hpack_size();
        if size > self.max_size {
            // An oversized entry empties the table (RFC 7541 §4.4).
            self.dynamic.clear();
            self.current_size = 0;
            return;
        }
        while self.current_size + size > self.max_size {
            if let Some(evicted) = self.dynamic.pop() {
                self.current_size -= evicted.hpack_size();
            } else {
                break;
            }
        }
        self.current_size += size;
        self.dynamic.insert(0, header);
    }

    /// Encode a header list, updating the dynamic table, and return the
    /// number of octets the encoded block occupies.
    pub fn encode_block_size(&mut self, headers: &[Header]) -> usize {
        let mut total = 0usize;
        for header in headers {
            let representation = self.lookup(header);
            total += match representation {
                Representation::Indexed(index) => integer_octets(index as u64, 7),
                Representation::LiteralWithIndexing { name_index } => {
                    let name_cost = match name_index {
                        Some(index) => integer_octets(index as u64, 6),
                        None => 1 + string_octets(header.name.len()),
                    };
                    let value_cost = string_octets(header.value.len());
                    self.insert(header.clone());
                    name_cost + value_cost
                }
            };
            self.uncompressed_octets += (header.name.len() + header.value.len() + 4) as u64;
        }
        self.encoded_octets += total as u64;
        total
    }

    /// The standard request pseudo-header block for an HTTPS GET.
    pub fn request_headers(authority: &str, path: &str, with_cookie: Option<&str>) -> Vec<Header> {
        let mut headers = vec![
            Header::new(":method", "GET"),
            Header::new(":scheme", "https"),
            Header::new(":authority", authority),
            Header::new(":path", path),
            Header::new("user-agent", "Mozilla/5.0 (X11; Linux x86_64) Chromium/87.0.4280.88"),
            Header::new("accept", "*/*"),
            Header::new("accept-encoding", "gzip, deflate, br"),
            Header::new("accept-language", "en-US,en;q=0.9"),
        ];
        if let Some(cookie) = with_cookie {
            headers.push(Header::new("cookie", cookie));
        }
        headers
    }
}

/// Octets needed for an HPACK prefix-coded integer with an `n`-bit prefix.
fn integer_octets(value: u64, prefix_bits: u32) -> usize {
    let max_prefix = (1u64 << prefix_bits) - 1;
    if value < max_prefix {
        1
    } else {
        let mut rest = value - max_prefix;
        let mut octets = 1;
        loop {
            octets += 1;
            if rest < 128 {
                break;
            }
            rest /= 128;
        }
        octets
    }
}

/// Octets for a literal string: length prefix (7-bit) plus the raw bytes
/// (no Huffman coding).
fn string_octets(len: usize) -> usize {
    integer_octets(len as u64, 7) + len
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(authority: &str) -> Vec<Header> {
        HpackContext::request_headers(authority, "/script.js", None)
    }

    #[test]
    fn integer_prefix_coding_sizes() {
        assert_eq!(integer_octets(10, 5), 1);
        assert_eq!(integer_octets(31, 5), 2); // 31 == 2^5 - 1 needs a continuation
        assert_eq!(integer_octets(1337, 5), 3);
        assert_eq!(integer_octets(62, 7), 1);
    }

    #[test]
    fn repeated_requests_on_one_connection_compress_better() {
        let mut ctx = HpackContext::default();
        let first = ctx.encode_block_size(&request("www.example.com"));
        let second = ctx.encode_block_size(&request("www.example.com"));
        assert!(second < first, "second block ({second}) should be smaller than first ({first})");
        // All fields are now table hits: the block is a handful of index octets.
        assert!(second <= request("www.example.com").len() * 3);
    }

    #[test]
    fn new_connection_restarts_the_dictionary() {
        let mut long_lived = HpackContext::default();
        long_lived.encode_block_size(&request("www.example.com"));
        let warm = long_lived.encode_block_size(&request("www.example.com"));
        // A fresh context (= a redundant connection) pays the full price again.
        let mut fresh = HpackContext::default();
        let cold = fresh.encode_block_size(&request("www.example.com"));
        assert!(cold > warm * 3, "cold={cold} warm={warm}");
    }

    #[test]
    fn dynamic_table_eviction_respects_size_limit() {
        let mut ctx = HpackContext::new(200);
        for i in 0..50 {
            ctx.encode_block_size(&[Header::new("x-custom-header", &format!("value-{i}"))]);
            assert!(ctx.dynamic_size() <= 200);
        }
        assert!(ctx.dynamic_entries() <= 4);
    }

    #[test]
    fn oversized_entry_clears_the_table() {
        let mut ctx = HpackContext::new(64);
        ctx.encode_block_size(&[Header::new("a", "b")]);
        assert_eq!(ctx.dynamic_entries(), 1);
        let huge_value = "v".repeat(500);
        ctx.encode_block_size(&[Header::new("huge", &huge_value)]);
        assert_eq!(ctx.dynamic_entries(), 0);
        assert_eq!(ctx.dynamic_size(), 0);
    }

    #[test]
    fn static_table_hits_cost_one_octet() {
        let mut ctx = HpackContext::default();
        let size = ctx.encode_block_size(&[Header::new(":method", "GET"), Header::new(":scheme", "https")]);
        assert_eq!(size, 2);
    }

    #[test]
    fn compression_ratio_improves_with_reuse() {
        let mut ctx = HpackContext::default();
        ctx.encode_block_size(&request("shop.example.org"));
        let early = ctx.compression_ratio();
        for _ in 0..20 {
            ctx.encode_block_size(&request("shop.example.org"));
        }
        assert!(ctx.compression_ratio() < early);
        assert!(ctx.compression_ratio() < 0.3);
    }

    #[test]
    fn cookie_header_is_included_when_credentialed() {
        let with = HpackContext::request_headers("example.com", "/", Some("sid=abc"));
        let without = HpackContext::request_headers("example.com", "/", None);
        assert_eq!(with.len(), without.len() + 1);
        assert!(with.iter().any(|h| h.name == "cookie"));
    }
}
