//! A compact HPACK model (RFC 7541).
//!
//! The paper (and the related work it cites, e.g. Marx et al.) points out
//! that one hidden cost of redundant connections is that **header compression
//! loses its dictionary**: every new connection starts with an empty dynamic
//! table, so the first requests on it pay full header bytes again. This
//! module implements enough of HPACK — the static table, a FIFO dynamic table
//! with size accounting, indexed and literal representations with integer
//! prefix coding — to measure that effect, while skipping Huffman coding
//! (sizes are reported un-Huffman-coded, a conservative over-estimate on both
//! sides of any comparison).

use netsim_types::fnv1a;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One HTTP header field.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Header {
    /// Lower-case field name (pseudo-headers keep their leading `:`).
    pub name: String,
    /// Field value.
    pub value: String,
}

impl Header {
    /// Construct a header, lower-casing the name.
    pub fn new(name: &str, value: &str) -> Self {
        Header { name: name.to_ascii_lowercase(), value: value.to_string() }
    }

    /// The HPACK size of the entry: name + value + 32 octets of overhead
    /// (RFC 7541 §4.1).
    pub fn hpack_size(&self) -> usize {
        self.name.len() + self.value.len() + 32
    }
}

impl fmt::Debug for Header {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.value)
    }
}

/// The portion of the RFC 7541 Appendix A static table that request encoding
/// actually hits, with original indices preserved.
const STATIC_TABLE: &[(usize, &str, &str)] = &[
    (1, ":authority", ""),
    (2, ":method", "GET"),
    (3, ":method", "POST"),
    (4, ":path", "/"),
    (5, ":path", "/index.html"),
    (6, ":scheme", "http"),
    (7, ":scheme", "https"),
    (8, ":status", "200"),
    (13, ":status", "404"),
    (14, ":status", "500"),
    (15, "accept-charset", ""),
    (16, "accept-encoding", "gzip, deflate"),
    (17, "accept-language", ""),
    (19, "accept", ""),
    (23, "cache-control", ""),
    (28, "content-length", ""),
    (31, "content-type", ""),
    (32, "cookie", ""),
    (33, "date", ""),
    (38, "host", ""),
    (46, "referer", ""),
    (58, "user-agent", ""),
];

/// Number of entries in the full RFC 7541 static table.
const STATIC_TABLE_LEN: usize = 61;

/// Default maximum dynamic-table size (SETTINGS_HEADER_TABLE_SIZE default).
pub const DEFAULT_DYNAMIC_TABLE_SIZE: usize = 4096;

/// How a single header field was represented on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
enum Representation {
    /// Fully indexed (static or dynamic table hit).
    Indexed(usize),
    /// Literal with incremental indexing; the name may be indexed.
    LiteralWithIndexing { name_index: Option<usize> },
}

/// A dynamic-table entry, stored as a fingerprint instead of owned strings.
///
/// The size model only needs *equality* of (name, value) pairs and their
/// lengths, so entries keep 64-bit FNV-1a hashes plus the lengths. This makes
/// table insertion allocation-free — the property the zero-allocation visit
/// fast path relies on — at the (deterministic, astronomically unlikely)
/// risk of a hash collision conflating two header fields.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
struct DynamicEntry {
    name_hash: u64,
    value_hash: u64,
    name_len: u32,
    value_len: u32,
}

impl DynamicEntry {
    /// RFC 7541 §4.1 entry size: name + value + 32 octets of overhead.
    fn hpack_size(&self) -> usize {
        self.name_len as usize + self.value_len as usize + 32
    }
}

/// One endpoint's HPACK encoder/decoder state (the dynamic table).
///
/// The simulation uses a shared context per connection direction; encoding a
/// header list both returns the encoded size and updates the table exactly as
/// a real encoder would, so repeated requests on the *same* connection get
/// cheaper while a *new* connection starts from scratch.
///
/// The FIFO table is a deque of fingerprints (newest at the front) plus a
/// hash index mapping fingerprints to insertion sequence numbers, so the
/// exact-match probe on every encoded field is O(1) instead of a scan of the
/// ~60-entry table, and insertion never shifts the table.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HpackContext {
    /// Fingerprints, newest first. Front entry has dynamic index
    /// `STATIC_TABLE_LEN + 1`.
    dynamic: std::collections::VecDeque<(DynamicEntry, u64)>,
    /// Fingerprint → newest insertion sequence holding it.
    index: netsim_types::FnvHashMap<DynamicEntry, u64>,
    /// Sequence number the next insertion will get.
    next_seq: u64,
    max_size: usize,
    current_size: usize,
    /// Total octets that crossed the wire through this context.
    pub encoded_octets: u64,
    /// Octets the headers would have cost uncompressed (name: value\r\n).
    pub uncompressed_octets: u64,
}

impl Default for HpackContext {
    fn default() -> Self {
        Self::new(DEFAULT_DYNAMIC_TABLE_SIZE)
    }
}

impl HpackContext {
    /// A context with the given maximum dynamic-table size.
    pub fn new(max_size: usize) -> Self {
        HpackContext {
            dynamic: std::collections::VecDeque::new(),
            index: netsim_types::FnvHashMap::default(),
            next_seq: 0,
            max_size,
            current_size: 0,
            encoded_octets: 0,
            uncompressed_octets: 0,
        }
    }

    /// The dynamic-table index (HPACK numbering) of the entry inserted with
    /// sequence `seq`.
    fn dynamic_index_of(&self, seq: u64) -> usize {
        STATIC_TABLE_LEN + 1 + (self.next_seq - 1 - seq) as usize
    }

    /// Drop every dynamic-table entry, retaining heap capacity.
    fn clear_table(&mut self) {
        self.dynamic.clear();
        self.index.clear();
        self.current_size = 0;
    }

    /// Number of entries currently in the dynamic table.
    pub fn dynamic_entries(&self) -> usize {
        self.dynamic.len()
    }

    /// Current dynamic-table size in octets (RFC 7541 accounting).
    pub fn dynamic_size(&self) -> usize {
        self.current_size
    }

    /// The compression ratio achieved so far (encoded / uncompressed), or 1.0
    /// if nothing has been encoded.
    pub fn compression_ratio(&self) -> f64 {
        if self.uncompressed_octets == 0 {
            1.0
        } else {
            self.encoded_octets as f64 / self.uncompressed_octets as f64
        }
    }

    /// Reset to the state of a freshly constructed context with the same
    /// maximum table size, retaining the dynamic table's heap capacity (used
    /// when a pooled connection shell is re-established).
    pub fn reset(&mut self) {
        self.clear_table();
        self.next_seq = 0;
        self.encoded_octets = 0;
        self.uncompressed_octets = 0;
    }

    fn lookup(&self, name: &str, value: &str) -> Representation {
        // Exact match in the static table?
        for (index, static_name, static_value) in STATIC_TABLE {
            if *static_name == name && *static_value == value && !static_value.is_empty() {
                return Representation::Indexed(*index);
            }
        }
        let probe = DynamicEntry {
            name_hash: fnv1a(name.as_bytes()),
            value_hash: fnv1a(value.as_bytes()),
            name_len: name.len() as u32,
            value_len: value.len() as u32,
        };
        // Exact match in the dynamic table? Index space continues after the
        // static table (most recent insertion = lowest dynamic index).
        if let Some(seq) = self.index.get(&probe) {
            return Representation::Indexed(self.dynamic_index_of(*seq));
        }
        // Name-only match (static first, then dynamic)?
        let name_index = STATIC_TABLE
            .iter()
            .find(|(_, static_name, _)| *static_name == name)
            .map(|(index, _, _)| *index)
            .or_else(|| {
                self.dynamic
                    .iter()
                    .position(|(entry, _)| {
                        entry.name_hash == probe.name_hash && entry.name_len == probe.name_len
                    })
                    .map(|offset| STATIC_TABLE_LEN + 1 + offset)
            });
        Representation::LiteralWithIndexing { name_index }
    }

    fn insert(&mut self, entry: DynamicEntry) {
        let size = entry.hpack_size();
        if size > self.max_size {
            // An oversized entry empties the table (RFC 7541 §4.4).
            self.clear_table();
            return;
        }
        while self.current_size + size > self.max_size {
            if let Some((evicted, seq)) = self.dynamic.pop_back() {
                self.current_size -= evicted.hpack_size();
                // A newer duplicate keeps its index entry.
                if self.index.get(&evicted) == Some(&seq) {
                    self.index.remove(&evicted);
                }
            } else {
                break;
            }
        }
        self.current_size += size;
        self.dynamic.push_front((entry, self.next_seq));
        self.index.insert(entry, self.next_seq);
        self.next_seq += 1;
    }

    /// Encode one header field, updating the dynamic table, and return its
    /// encoded octet count. Allocation-free.
    fn encode_field(&mut self, name: &str, value: &str) -> usize {
        let cost = match self.lookup(name, value) {
            Representation::Indexed(index) => integer_octets(index as u64, 7),
            Representation::LiteralWithIndexing { name_index } => {
                let name_cost = match name_index {
                    Some(index) => integer_octets(index as u64, 6),
                    None => 1 + string_octets(name.len()),
                };
                let value_cost = string_octets(value.len());
                self.insert(DynamicEntry {
                    name_hash: fnv1a(name.as_bytes()),
                    value_hash: fnv1a(value.as_bytes()),
                    name_len: name.len() as u32,
                    value_len: value.len() as u32,
                });
                name_cost + value_cost
            }
        };
        self.uncompressed_octets += (name.len() + value.len() + 4) as u64;
        self.encoded_octets += cost as u64;
        cost
    }

    /// Encode a header list, updating the dynamic table, and return the
    /// number of octets the encoded block occupies.
    pub fn encode_block_size(&mut self, headers: &[Header]) -> usize {
        headers.iter().map(|header| self.encode_field(&header.name, &header.value)).sum()
    }

    /// Encode one field whose static-table disposition was resolved at
    /// compile time: the name matched static index `name_index` (never a
    /// full static (name, value) hit), so only the dynamic table needs
    /// probing. The hot-loop core of [`HpackContext::encode_request_size`].
    fn encode_precomputed(
        &mut self,
        name_index: usize,
        name_len: usize,
        name_hash: u64,
        value: &str,
    ) -> usize {
        let probe = DynamicEntry {
            name_hash,
            value_hash: fnv1a(value.as_bytes()),
            name_len: name_len as u32,
            value_len: value.len() as u32,
        };
        let cost = match self.index.get(&probe) {
            Some(seq) => integer_octets(self.dynamic_index_of(*seq) as u64, 7),
            None => {
                let name_cost = integer_octets(name_index as u64, 6);
                let value_cost = string_octets(value.len());
                self.insert(probe);
                name_cost + value_cost
            }
        };
        self.uncompressed_octets += (name_len + value.len() + 4) as u64;
        self.encoded_octets += cost as u64;
        cost
    }

    /// Encode the standard HTTPS GET request block (the same fields, in the
    /// same order, as [`HpackContext::request_headers`] builds) without
    /// allocating the intermediate header list — and with every static-table
    /// decision folded at compile time. Returns the encoded block size;
    /// equivalent to
    /// `encode_block_size(&request_headers(authority, path, cookie))`
    /// (asserted by `request_fast_path_matches_header_list_encoding`).
    pub fn encode_request_size(&mut self, authority: &str, path: &str, cookie: Option<&str>) -> usize {
        let mut total = 0usize;
        // `:method: GET` (static 2) and `:scheme: https` (static 7): full
        // static hits, one octet each, no table update.
        total += 2;
        self.uncompressed_octets += (":method".len() + "GET".len() + 4) as u64;
        self.uncompressed_octets += (":scheme".len() + "https".len() + 4) as u64;
        self.encoded_octets += 2;
        // `:authority` (static name 1) — the value is never a static hit.
        total += self.encode_precomputed(1, ":authority".len(), AUTHORITY_NAME_HASH, authority);
        // `:path` — "/" and "/index.html" are full static hits (4 / 5).
        match path {
            "/" | "/index.html" => {
                let index: u64 = if path == "/" { 4 } else { 5 };
                let cost = integer_octets(index, 7);
                total += cost;
                self.uncompressed_octets += (":path".len() + path.len() + 4) as u64;
                self.encoded_octets += cost as u64;
            }
            _ => total += self.encode_precomputed(4, ":path".len(), PATH_NAME_HASH, path),
        }
        // The constant request fields: static name match only (their values
        // differ from the static table's), dynamic probe via fully const
        // fingerprints — no hashing at all on the hot path.
        total += self.encode_const_field(58, USER_AGENT_ENTRY);
        total += self.encode_const_field(19, ACCEPT_ENTRY);
        total += self.encode_const_field(16, ACCEPT_ENCODING_ENTRY);
        total += self.encode_const_field(17, ACCEPT_LANGUAGE_ENTRY);
        if let Some(cookie) = cookie {
            total += self.encode_precomputed(32, "cookie".len(), COOKIE_NAME_HASH, cookie);
        }
        total
    }

    /// Encode a field whose complete fingerprint is a compile-time constant
    /// (the fixed user-agent / accept-* block).
    fn encode_const_field(&mut self, name_index: usize, probe: DynamicEntry) -> usize {
        let cost = match self.index.get(&probe) {
            Some(seq) => integer_octets(self.dynamic_index_of(*seq) as u64, 7),
            None => {
                let name_cost = integer_octets(name_index as u64, 6);
                let value_cost = string_octets(probe.value_len as usize);
                self.insert(probe);
                name_cost + value_cost
            }
        };
        self.uncompressed_octets += (probe.name_len + probe.value_len + 4) as u64;
        self.encoded_octets += cost as u64;
        cost
    }

    /// The standard request pseudo-header block for an HTTPS GET.
    pub fn request_headers(authority: &str, path: &str, with_cookie: Option<&str>) -> Vec<Header> {
        let mut headers = vec![
            Header::new(":method", "GET"),
            Header::new(":scheme", "https"),
            Header::new(":authority", authority),
            Header::new(":path", path),
            Header::new("user-agent", REQUEST_USER_AGENT),
            Header::new("accept", "*/*"),
            Header::new("accept-encoding", "gzip, deflate, br"),
            Header::new("accept-language", "en-US,en;q=0.9"),
        ];
        if let Some(cookie) = with_cookie {
            headers.push(Header::new("cookie", cookie));
        }
        headers
    }
}

/// The user-agent string of the measurement browser (Chromium 87).
const REQUEST_USER_AGENT: &str = "Mozilla/5.0 (X11; Linux x86_64) Chromium/87.0.4280.88";

// Compile-time name hashes of the request block's variable header fields.
const AUTHORITY_NAME_HASH: u64 = fnv1a(b":authority");
const PATH_NAME_HASH: u64 = fnv1a(b":path");
const COOKIE_NAME_HASH: u64 = fnv1a(b"cookie");

/// A fully const dynamic-table fingerprint for a constant (name, value) pair.
const fn const_entry(name: &str, value: &str) -> DynamicEntry {
    DynamicEntry {
        name_hash: fnv1a(name.as_bytes()),
        value_hash: fnv1a(value.as_bytes()),
        name_len: name.len() as u32,
        value_len: value.len() as u32,
    }
}

// Compile-time fingerprints of the request block's constant fields.
const USER_AGENT_ENTRY: DynamicEntry = const_entry("user-agent", REQUEST_USER_AGENT);
const ACCEPT_ENTRY: DynamicEntry = const_entry("accept", "*/*");
const ACCEPT_ENCODING_ENTRY: DynamicEntry = const_entry("accept-encoding", "gzip, deflate, br");
const ACCEPT_LANGUAGE_ENTRY: DynamicEntry = const_entry("accept-language", "en-US,en;q=0.9");

/// Octets needed for an HPACK prefix-coded integer with an `n`-bit prefix.
fn integer_octets(value: u64, prefix_bits: u32) -> usize {
    let max_prefix = (1u64 << prefix_bits) - 1;
    if value < max_prefix {
        1
    } else {
        let mut rest = value - max_prefix;
        let mut octets = 1;
        loop {
            octets += 1;
            if rest < 128 {
                break;
            }
            rest /= 128;
        }
        octets
    }
}

/// Octets for a literal string: length prefix (7-bit) plus the raw bytes
/// (no Huffman coding).
fn string_octets(len: usize) -> usize {
    integer_octets(len as u64, 7) + len
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(authority: &str) -> Vec<Header> {
        HpackContext::request_headers(authority, "/script.js", None)
    }

    #[test]
    fn integer_prefix_coding_sizes() {
        assert_eq!(integer_octets(10, 5), 1);
        assert_eq!(integer_octets(31, 5), 2); // 31 == 2^5 - 1 needs a continuation
        assert_eq!(integer_octets(1337, 5), 3);
        assert_eq!(integer_octets(62, 7), 1);
    }

    #[test]
    fn repeated_requests_on_one_connection_compress_better() {
        let mut ctx = HpackContext::default();
        let first = ctx.encode_block_size(&request("www.example.com"));
        let second = ctx.encode_block_size(&request("www.example.com"));
        assert!(second < first, "second block ({second}) should be smaller than first ({first})");
        // All fields are now table hits: the block is a handful of index octets.
        assert!(second <= request("www.example.com").len() * 3);
    }

    #[test]
    fn new_connection_restarts_the_dictionary() {
        let mut long_lived = HpackContext::default();
        long_lived.encode_block_size(&request("www.example.com"));
        let warm = long_lived.encode_block_size(&request("www.example.com"));
        // A fresh context (= a redundant connection) pays the full price again.
        let mut fresh = HpackContext::default();
        let cold = fresh.encode_block_size(&request("www.example.com"));
        assert!(cold > warm * 3, "cold={cold} warm={warm}");
    }

    #[test]
    fn dynamic_table_eviction_respects_size_limit() {
        let mut ctx = HpackContext::new(200);
        for i in 0..50 {
            ctx.encode_block_size(&[Header::new("x-custom-header", &format!("value-{i}"))]);
            assert!(ctx.dynamic_size() <= 200);
        }
        assert!(ctx.dynamic_entries() <= 4);
    }

    #[test]
    fn oversized_entry_clears_the_table() {
        let mut ctx = HpackContext::new(64);
        ctx.encode_block_size(&[Header::new("a", "b")]);
        assert_eq!(ctx.dynamic_entries(), 1);
        let huge_value = "v".repeat(500);
        ctx.encode_block_size(&[Header::new("huge", &huge_value)]);
        assert_eq!(ctx.dynamic_entries(), 0);
        assert_eq!(ctx.dynamic_size(), 0);
    }

    #[test]
    fn static_table_hits_cost_one_octet() {
        let mut ctx = HpackContext::default();
        let size = ctx.encode_block_size(&[Header::new(":method", "GET"), Header::new(":scheme", "https")]);
        assert_eq!(size, 2);
    }

    #[test]
    fn compression_ratio_improves_with_reuse() {
        let mut ctx = HpackContext::default();
        ctx.encode_block_size(&request("shop.example.org"));
        let early = ctx.compression_ratio();
        for _ in 0..20 {
            ctx.encode_block_size(&request("shop.example.org"));
        }
        assert!(ctx.compression_ratio() < early);
        assert!(ctx.compression_ratio() < 0.3);
    }

    #[test]
    fn request_fast_path_matches_header_list_encoding() {
        let mut fast = HpackContext::default();
        let mut slow = HpackContext::default();
        let cases: &[(&str, &str, Option<&str>)] = &[
            ("www.example.com", "/", Some("sid=0123456789abcdef")),
            ("www.example.com", "/assets/app.js", Some("sid=0123456789abcdef")),
            ("img.example.com", "/logo.png", None),
            ("www.example.com", "/assets/app.js", Some("sid=0123456789abcdef")),
        ];
        for (authority, path, cookie) in cases {
            let a = fast.encode_request_size(authority, path, *cookie);
            let b = slow.encode_block_size(&HpackContext::request_headers(authority, path, *cookie));
            assert_eq!(a, b, "sizes diverge for {authority}{path}");
        }
        assert_eq!(fast.dynamic_entries(), slow.dynamic_entries());
        assert_eq!(fast.dynamic_size(), slow.dynamic_size());
        assert_eq!(fast.encoded_octets, slow.encoded_octets);
        assert_eq!(fast.uncompressed_octets, slow.uncompressed_octets);
    }

    #[test]
    fn reset_restores_a_cold_dictionary() {
        let mut ctx = HpackContext::default();
        let cold = ctx.encode_request_size("www.example.com", "/", None);
        let warm = ctx.encode_request_size("www.example.com", "/", None);
        assert!(warm < cold);
        ctx.reset();
        assert_eq!(ctx.dynamic_entries(), 0);
        assert_eq!(ctx.dynamic_size(), 0);
        assert_eq!(ctx.encode_request_size("www.example.com", "/", None), cold);
    }

    #[test]
    fn cookie_header_is_included_when_credentialed() {
        let with = HpackContext::request_headers("example.com", "/", Some("sid=abc"));
        let without = HpackContext::request_headers("example.com", "/", None);
        assert_eq!(with.len(), without.len() + 1);
        assert!(with.iter().any(|h| h.name == "cookie"));
    }
}
