//! HTTP/2 stream identifiers and the per-stream state machine (RFC 7540 §5.1).

use serde::{Deserialize, Serialize};
use std::fmt;

/// An HTTP/2 stream identifier (31 bits). Client-initiated streams are odd;
/// stream 0 addresses the connection itself.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct StreamId(u32);

impl StreamId {
    /// The connection-control stream (id 0).
    pub const CONNECTION: StreamId = StreamId(0);

    /// The first client-initiated stream.
    pub const FIRST_CLIENT: StreamId = StreamId(1);

    /// Create a stream id (masked to 31 bits).
    pub const fn new(value: u32) -> Self {
        StreamId(value & 0x7FFF_FFFF)
    }

    /// The numeric value.
    pub const fn value(self) -> u32 {
        self.0
    }

    /// `true` for client-initiated (odd) stream ids.
    pub const fn is_client_initiated(self) -> bool {
        self.0 % 2 == 1
    }

    /// The next stream id usable by the same peer (id + 2).
    pub const fn next_same_peer(self) -> StreamId {
        StreamId((self.0 + 2) & 0x7FFF_FFFF)
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stream-{}", self.0)
    }
}

impl fmt::Debug for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// The stream states of RFC 7540 §5.1 (the subset reachable without
/// PUSH_PROMISE, which the simulation does not send).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StreamState {
    /// Not yet used.
    Idle,
    /// HEADERS sent/received, both directions open.
    Open,
    /// The local endpoint finished sending (END_STREAM sent).
    HalfClosedLocal,
    /// The remote endpoint finished sending (END_STREAM received).
    HalfClosedRemote,
    /// Both directions finished, or the stream was reset.
    Closed,
}

/// Errors from illegal stream-state transitions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamError {
    /// An action was attempted in a state that does not allow it.
    InvalidTransition {
        /// State the stream was in.
        from: StreamState,
        /// Human-readable action name.
        action: &'static str,
    },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::InvalidTransition { from, action } => {
                write!(f, "cannot {action} in state {from:?}")
            }
        }
    }
}

impl std::error::Error for StreamError {}

impl StreamState {
    /// Transition for sending HEADERS (opening the stream).
    pub fn send_headers(self, end_stream: bool) -> Result<StreamState, StreamError> {
        match self {
            StreamState::Idle => {
                Ok(if end_stream { StreamState::HalfClosedLocal } else { StreamState::Open })
            }
            from => Err(StreamError::InvalidTransition { from, action: "send HEADERS" }),
        }
    }

    /// Transition for sending END_STREAM (on DATA or trailing HEADERS).
    pub fn send_end_stream(self) -> Result<StreamState, StreamError> {
        match self {
            StreamState::Open => Ok(StreamState::HalfClosedLocal),
            StreamState::HalfClosedRemote => Ok(StreamState::Closed),
            from => Err(StreamError::InvalidTransition { from, action: "send END_STREAM" }),
        }
    }

    /// Transition for receiving END_STREAM from the peer.
    pub fn receive_end_stream(self) -> Result<StreamState, StreamError> {
        match self {
            StreamState::Open => Ok(StreamState::HalfClosedRemote),
            StreamState::HalfClosedLocal => Ok(StreamState::Closed),
            from => Err(StreamError::InvalidTransition { from, action: "receive END_STREAM" }),
        }
    }

    /// Transition for RST_STREAM (either direction): always closes.
    pub fn reset(self) -> StreamState {
        StreamState::Closed
    }

    /// `true` once no further frames may flow on the stream.
    pub fn is_closed(self) -> bool {
        self == StreamState::Closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_id_parity_and_sequence() {
        assert!(StreamId::FIRST_CLIENT.is_client_initiated());
        assert!(!StreamId::CONNECTION.is_client_initiated());
        assert_eq!(StreamId::new(1).next_same_peer(), StreamId::new(3));
        assert_eq!(StreamId::new(0x8000_0001).value(), 1, "high bit is masked");
        assert_eq!(StreamId::new(5).to_string(), "stream-5");
    }

    #[test]
    fn request_response_lifecycle() {
        // Typical GET: client sends HEADERS+END_STREAM, server answers.
        let s = StreamState::Idle.send_headers(true).unwrap();
        assert_eq!(s, StreamState::HalfClosedLocal);
        let s = s.receive_end_stream().unwrap();
        assert!(s.is_closed());
    }

    #[test]
    fn post_lifecycle_with_body() {
        let s = StreamState::Idle.send_headers(false).unwrap();
        assert_eq!(s, StreamState::Open);
        let s = s.send_end_stream().unwrap();
        assert_eq!(s, StreamState::HalfClosedLocal);
        let s = s.receive_end_stream().unwrap();
        assert_eq!(s, StreamState::Closed);
    }

    #[test]
    fn server_finishing_first() {
        let s = StreamState::Idle.send_headers(false).unwrap();
        let s = s.receive_end_stream().unwrap();
        assert_eq!(s, StreamState::HalfClosedRemote);
        let s = s.send_end_stream().unwrap();
        assert!(s.is_closed());
    }

    #[test]
    fn invalid_transitions_are_rejected() {
        assert!(StreamState::Closed.send_headers(false).is_err());
        assert!(StreamState::Idle.send_end_stream().is_err());
        assert!(StreamState::HalfClosedRemote.receive_end_stream().is_err());
        let err = StreamState::Closed.send_headers(true).unwrap_err();
        assert!(err.to_string().contains("HEADERS"));
    }

    #[test]
    fn reset_closes_from_any_state() {
        for state in [
            StreamState::Idle,
            StreamState::Open,
            StreamState::HalfClosedLocal,
            StreamState::HalfClosedRemote,
            StreamState::Closed,
        ] {
            assert!(state.reset().is_closed());
        }
    }
}
