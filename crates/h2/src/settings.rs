//! Connection settings (RFC 7540 §6.5.2).

use serde::{Deserialize, Serialize};

/// SETTINGS_HEADER_TABLE_SIZE.
pub const SETTINGS_HEADER_TABLE_SIZE: u16 = 0x1;
/// SETTINGS_ENABLE_PUSH.
pub const SETTINGS_ENABLE_PUSH: u16 = 0x2;
/// SETTINGS_MAX_CONCURRENT_STREAMS.
pub const SETTINGS_MAX_CONCURRENT_STREAMS: u16 = 0x3;
/// SETTINGS_INITIAL_WINDOW_SIZE.
pub const SETTINGS_INITIAL_WINDOW_SIZE: u16 = 0x4;
/// SETTINGS_MAX_FRAME_SIZE.
pub const SETTINGS_MAX_FRAME_SIZE: u16 = 0x5;
/// SETTINGS_MAX_HEADER_LIST_SIZE.
pub const SETTINGS_MAX_HEADER_LIST_SIZE: u16 = 0x6;

/// The settings one endpoint advertises for a connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Settings {
    /// Maximum HPACK dynamic-table size the peer may use.
    pub header_table_size: u32,
    /// Whether server push is permitted.
    pub enable_push: bool,
    /// Maximum number of concurrently open streams the peer may create.
    pub max_concurrent_streams: u32,
    /// Initial per-stream flow-control window.
    pub initial_window_size: u32,
    /// Maximum frame payload size.
    pub max_frame_size: u32,
}

impl Default for Settings {
    fn default() -> Self {
        // RFC 7540 §11.3 initial values, except max_concurrent_streams which
        // servers commonly advertise as 100 (nginx / h2o defaults).
        Settings {
            header_table_size: 4096,
            enable_push: true,
            max_concurrent_streams: 100,
            initial_window_size: 65_535,
            max_frame_size: 16_384,
        }
    }
}

impl Settings {
    /// The settings Chromium advertises as a client (push disabled since M106
    /// but still on in Chromium 87; window raised to 6 MiB via WINDOW_UPDATE,
    /// which the connection model applies separately).
    pub fn chromium_client() -> Self {
        Settings {
            header_table_size: 65_536,
            enable_push: true,
            max_concurrent_streams: 1000,
            initial_window_size: 6 * 1024 * 1024,
            max_frame_size: 16_384,
        }
    }

    /// Serialise into SETTINGS frame (identifier, value) pairs.
    pub fn to_parameters(&self) -> Vec<(u16, u32)> {
        vec![
            (SETTINGS_HEADER_TABLE_SIZE, self.header_table_size),
            (SETTINGS_ENABLE_PUSH, u32::from(self.enable_push)),
            (SETTINGS_MAX_CONCURRENT_STREAMS, self.max_concurrent_streams),
            (SETTINGS_INITIAL_WINDOW_SIZE, self.initial_window_size),
            (SETTINGS_MAX_FRAME_SIZE, self.max_frame_size),
        ]
    }

    /// Apply (identifier, value) pairs received in a SETTINGS frame; unknown
    /// identifiers are ignored as the RFC requires.
    pub fn apply_parameters(&mut self, parameters: &[(u16, u32)]) {
        for (id, value) in parameters {
            match *id {
                SETTINGS_HEADER_TABLE_SIZE => self.header_table_size = *value,
                SETTINGS_ENABLE_PUSH => self.enable_push = *value != 0,
                SETTINGS_MAX_CONCURRENT_STREAMS => self.max_concurrent_streams = *value,
                SETTINGS_INITIAL_WINDOW_SIZE => self.initial_window_size = *value,
                SETTINGS_MAX_FRAME_SIZE => self.max_frame_size = *value,
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_rfc_initial_values() {
        let s = Settings::default();
        assert_eq!(s.header_table_size, 4096);
        assert_eq!(s.initial_window_size, 65_535);
        assert_eq!(s.max_frame_size, 16_384);
        assert!(s.enable_push);
    }

    #[test]
    fn parameter_roundtrip() {
        let original = Settings::chromium_client();
        let mut rebuilt = Settings::default();
        rebuilt.apply_parameters(&original.to_parameters());
        assert_eq!(rebuilt, original);
    }

    #[test]
    fn unknown_parameters_are_ignored() {
        let mut s = Settings::default();
        s.apply_parameters(&[(0x99, 1234), (SETTINGS_MAX_CONCURRENT_STREAMS, 42)]);
        assert_eq!(s.max_concurrent_streams, 42);
        assert_eq!(s, Settings { max_concurrent_streams: 42, ..Settings::default() });
    }
}
