//! HTTP/2 frames and their binary codec.
//!
//! RFC 7540 §4 defines a 9-octet frame header (24-bit length, 8-bit type,
//! 8-bit flags, 31-bit stream id) followed by a type-specific payload. The
//! simulation exchanges frames between the browser model and simulated
//! servers; the codec keeps the wire format honest so the byte-overhead
//! accounting (and the ORIGIN-frame ablation) measures the real thing.
//!
//! The ORIGIN frame (RFC 8336) is included because the paper names it as the
//! mechanism servers *could* use to widen connection reuse — and notes that
//! Chromium does not implement it, which the browser model mirrors.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use netsim_types::DomainName;
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::stream::StreamId;

/// The registered HTTP/2 frame types (RFC 7540 §6, RFC 8336).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FrameType {
    /// DATA (0x0).
    Data,
    /// HEADERS (0x1).
    Headers,
    /// PRIORITY (0x2).
    Priority,
    /// RST_STREAM (0x3).
    RstStream,
    /// SETTINGS (0x4).
    Settings,
    /// PUSH_PROMISE (0x5).
    PushPromise,
    /// PING (0x6).
    Ping,
    /// GOAWAY (0x7).
    GoAway,
    /// WINDOW_UPDATE (0x8).
    WindowUpdate,
    /// CONTINUATION (0x9).
    Continuation,
    /// ORIGIN (0xC, RFC 8336).
    Origin,
}

impl FrameType {
    /// The wire identifier.
    pub const fn code(self) -> u8 {
        match self {
            FrameType::Data => 0x0,
            FrameType::Headers => 0x1,
            FrameType::Priority => 0x2,
            FrameType::RstStream => 0x3,
            FrameType::Settings => 0x4,
            FrameType::PushPromise => 0x5,
            FrameType::Ping => 0x6,
            FrameType::GoAway => 0x7,
            FrameType::WindowUpdate => 0x8,
            FrameType::Continuation => 0x9,
            FrameType::Origin => 0xC,
        }
    }

    /// Map a wire identifier back to a frame type.
    pub const fn from_code(code: u8) -> Option<FrameType> {
        Some(match code {
            0x0 => FrameType::Data,
            0x1 => FrameType::Headers,
            0x2 => FrameType::Priority,
            0x3 => FrameType::RstStream,
            0x4 => FrameType::Settings,
            0x5 => FrameType::PushPromise,
            0x6 => FrameType::Ping,
            0x7 => FrameType::GoAway,
            0x8 => FrameType::WindowUpdate,
            0x9 => FrameType::Continuation,
            0xC => FrameType::Origin,
            _ => return None,
        })
    }
}

/// The END_STREAM flag (DATA / HEADERS).
pub const FLAG_END_STREAM: u8 = 0x1;
/// The END_HEADERS flag (HEADERS / CONTINUATION).
pub const FLAG_END_HEADERS: u8 = 0x4;
/// The ACK flag (SETTINGS / PING).
pub const FLAG_ACK: u8 = 0x1;

/// One entry of an ORIGIN frame: an origin the server claims authority for.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OriginEntry {
    /// The authoritative origin, e.g. `https://images.example.com`.
    pub origin: String,
}

impl OriginEntry {
    /// An entry for an HTTPS origin on the default port.
    pub fn https(domain: &DomainName) -> Self {
        OriginEntry { origin: format!("https://{domain}") }
    }

    /// The domain part of the origin, if it parses.
    pub fn domain(&self) -> Option<DomainName> {
        let rest = self.origin.strip_prefix("https://").or_else(|| self.origin.strip_prefix("http://"))?;
        let host = rest.split([':', '/']).next().unwrap_or(rest);
        DomainName::parse(host).ok()
    }
}

impl fmt::Debug for OriginEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OriginEntry({})", self.origin)
    }
}

/// A decoded HTTP/2 frame.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Frame {
    /// DATA carrying `len` payload octets (payload bytes themselves are not
    /// materialised — the simulation tracks sizes, not content).
    Data {
        /// Stream the data belongs to.
        stream: StreamId,
        /// Payload length in octets.
        len: u32,
        /// Whether END_STREAM is set.
        end_stream: bool,
    },
    /// HEADERS carrying an HPACK-encoded block.
    Headers {
        /// Stream the header block belongs to.
        stream: StreamId,
        /// The HPACK-encoded block.
        block: Vec<u8>,
        /// Whether END_STREAM is set.
        end_stream: bool,
    },
    /// RST_STREAM with an error code.
    RstStream {
        /// Stream being reset.
        stream: StreamId,
        /// RFC 7540 §7 error code.
        error_code: u32,
    },
    /// SETTINGS as (identifier, value) pairs; `ack` frames carry none.
    Settings {
        /// Whether this is an acknowledgement.
        ack: bool,
        /// Settings parameters.
        parameters: Vec<(u16, u32)>,
    },
    /// PING (optionally an ack).
    Ping {
        /// Whether this is an acknowledgement.
        ack: bool,
        /// Opaque payload.
        payload: u64,
    },
    /// GOAWAY announcing the last stream the sender will process.
    GoAway {
        /// Highest stream id the sender may still process.
        last_stream: StreamId,
        /// RFC 7540 §7 error code.
        error_code: u32,
    },
    /// WINDOW_UPDATE increasing a flow-control window.
    WindowUpdate {
        /// Stream (0 = connection level).
        stream: StreamId,
        /// Window size increment.
        increment: u32,
    },
    /// ORIGIN (RFC 8336) — only valid on stream 0, sent by servers.
    Origin {
        /// Origins the server claims authority for.
        origins: Vec<OriginEntry>,
    },
}

impl Frame {
    /// The type of this frame.
    pub fn frame_type(&self) -> FrameType {
        match self {
            Frame::Data { .. } => FrameType::Data,
            Frame::Headers { .. } => FrameType::Headers,
            Frame::RstStream { .. } => FrameType::RstStream,
            Frame::Settings { .. } => FrameType::Settings,
            Frame::Ping { .. } => FrameType::Ping,
            Frame::GoAway { .. } => FrameType::GoAway,
            Frame::WindowUpdate { .. } => FrameType::WindowUpdate,
            Frame::Origin { .. } => FrameType::Origin,
        }
    }

    /// The stream the frame applies to (stream 0 for connection-level frames).
    pub fn stream_id(&self) -> StreamId {
        match self {
            Frame::Data { stream, .. }
            | Frame::Headers { stream, .. }
            | Frame::RstStream { stream, .. }
            | Frame::WindowUpdate { stream, .. } => *stream,
            Frame::Settings { .. } | Frame::Ping { .. } | Frame::GoAway { .. } | Frame::Origin { .. } => {
                StreamId::CONNECTION
            }
        }
    }

    /// Encode the frame into its RFC 7540 wire representation.
    pub fn encode(&self) -> Bytes {
        let mut payload = BytesMut::new();
        let mut flags: u8 = 0;
        match self {
            Frame::Data { len, end_stream, .. } => {
                // Payload content is synthetic: encode a zero-filled body of
                // the declared length, capped to keep traces small.
                let emit = (*len).min(16_384);
                payload.resize(emit as usize, 0);
                if *end_stream {
                    flags |= FLAG_END_STREAM;
                }
            }
            Frame::Headers { block, end_stream, .. } => {
                payload.extend_from_slice(block);
                flags |= FLAG_END_HEADERS;
                if *end_stream {
                    flags |= FLAG_END_STREAM;
                }
            }
            Frame::RstStream { error_code, .. } => payload.put_u32(*error_code),
            Frame::Settings { ack, parameters } => {
                if *ack {
                    flags |= FLAG_ACK;
                } else {
                    for (id, value) in parameters {
                        payload.put_u16(*id);
                        payload.put_u32(*value);
                    }
                }
            }
            Frame::Ping { ack, payload: data } => {
                if *ack {
                    flags |= FLAG_ACK;
                }
                payload.put_u64(*data);
            }
            Frame::GoAway { last_stream, error_code } => {
                payload.put_u32(last_stream.value());
                payload.put_u32(*error_code);
            }
            Frame::WindowUpdate { increment, .. } => payload.put_u32(*increment),
            Frame::Origin { origins } => {
                for entry in origins {
                    let ascii = entry.origin.as_bytes();
                    payload.put_u16(ascii.len() as u16);
                    payload.extend_from_slice(ascii);
                }
            }
        }
        let mut out = BytesMut::with_capacity(9 + payload.len());
        let len = payload.len() as u32;
        out.put_u8((len >> 16) as u8);
        out.put_u16((len & 0xFFFF) as u16);
        out.put_u8(self.frame_type().code());
        out.put_u8(flags);
        out.put_u32(self.stream_id().value() & 0x7FFF_FFFF);
        out.extend_from_slice(&payload);
        out.freeze()
    }

    /// Decode one frame from the front of `buf`, advancing it past the frame.
    pub fn decode(buf: &mut Bytes) -> Result<Frame, FrameDecodeError> {
        if buf.len() < 9 {
            return Err(FrameDecodeError::Truncated);
        }
        let len = ((buf[0] as usize) << 16) | ((buf[1] as usize) << 8) | buf[2] as usize;
        let type_code = buf[3];
        let flags = buf[4];
        let stream_raw =
            ((buf[5] as u32) << 24) | ((buf[6] as u32) << 16) | ((buf[7] as u32) << 8) | buf[8] as u32;
        let stream = StreamId::new(stream_raw & 0x7FFF_FFFF);
        if buf.len() < 9 + len {
            return Err(FrameDecodeError::Truncated);
        }
        buf.advance(9);
        let mut payload = buf.split_to(len);
        let frame_type = FrameType::from_code(type_code).ok_or(FrameDecodeError::UnknownType(type_code))?;
        let frame = match frame_type {
            FrameType::Data => {
                Frame::Data { stream, len: len as u32, end_stream: flags & FLAG_END_STREAM != 0 }
            }
            FrameType::Headers => {
                Frame::Headers { stream, block: payload.to_vec(), end_stream: flags & FLAG_END_STREAM != 0 }
            }
            FrameType::RstStream => {
                if payload.len() < 4 {
                    return Err(FrameDecodeError::BadPayload(frame_type));
                }
                Frame::RstStream { stream, error_code: payload.get_u32() }
            }
            FrameType::Settings => {
                if flags & FLAG_ACK != 0 {
                    Frame::Settings { ack: true, parameters: vec![] }
                } else {
                    if !payload.len().is_multiple_of(6) {
                        return Err(FrameDecodeError::BadPayload(frame_type));
                    }
                    let mut parameters = Vec::with_capacity(payload.len() / 6);
                    while payload.remaining() >= 6 {
                        parameters.push((payload.get_u16(), payload.get_u32()));
                    }
                    Frame::Settings { ack: false, parameters }
                }
            }
            FrameType::Ping => {
                if payload.len() < 8 {
                    return Err(FrameDecodeError::BadPayload(frame_type));
                }
                Frame::Ping { ack: flags & FLAG_ACK != 0, payload: payload.get_u64() }
            }
            FrameType::GoAway => {
                if payload.len() < 8 {
                    return Err(FrameDecodeError::BadPayload(frame_type));
                }
                Frame::GoAway {
                    last_stream: StreamId::new(payload.get_u32() & 0x7FFF_FFFF),
                    error_code: payload.get_u32(),
                }
            }
            FrameType::WindowUpdate => {
                if payload.len() < 4 {
                    return Err(FrameDecodeError::BadPayload(frame_type));
                }
                Frame::WindowUpdate { stream, increment: payload.get_u32() }
            }
            FrameType::Origin => {
                let mut origins = Vec::new();
                while payload.remaining() >= 2 {
                    let origin_len = payload.get_u16() as usize;
                    if payload.remaining() < origin_len {
                        return Err(FrameDecodeError::BadPayload(frame_type));
                    }
                    let ascii = payload.split_to(origin_len);
                    let origin = String::from_utf8(ascii.to_vec())
                        .map_err(|_| FrameDecodeError::BadPayload(frame_type))?;
                    origins.push(OriginEntry { origin });
                }
                Frame::Origin { origins }
            }
            FrameType::Priority | FrameType::PushPromise | FrameType::Continuation => {
                return Err(FrameDecodeError::Unsupported(frame_type));
            }
        };
        Ok(frame)
    }
}

/// Errors from [`Frame::decode`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameDecodeError {
    /// The buffer does not hold a complete frame.
    Truncated,
    /// The frame type octet is not a registered type.
    UnknownType(u8),
    /// The payload does not match the frame type's layout.
    BadPayload(FrameType),
    /// A valid type the simulation does not exchange (PRIORITY,
    /// PUSH_PROMISE, CONTINUATION).
    Unsupported(FrameType),
}

impl fmt::Display for FrameDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameDecodeError::Truncated => write!(f, "truncated frame"),
            FrameDecodeError::UnknownType(code) => write!(f, "unknown frame type 0x{code:x}"),
            FrameDecodeError::BadPayload(t) => write!(f, "malformed payload for {t:?}"),
            FrameDecodeError::Unsupported(t) => write!(f, "unsupported frame type {t:?}"),
        }
    }
}

impl std::error::Error for FrameDecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) -> Frame {
        let mut wire = frame.encode();
        let decoded = Frame::decode(&mut wire).unwrap();
        assert!(wire.is_empty(), "decode must consume the whole frame");
        decoded
    }

    #[test]
    fn settings_roundtrip() {
        let frame = Frame::Settings { ack: false, parameters: vec![(0x3, 100), (0x4, 65_535)] };
        assert_eq!(roundtrip(frame.clone()), frame);
        let ack = Frame::Settings { ack: true, parameters: vec![] };
        assert_eq!(roundtrip(ack.clone()), ack);
    }

    #[test]
    fn headers_and_data_roundtrip() {
        let headers = Frame::Headers { stream: StreamId::new(1), block: vec![1, 2, 3], end_stream: false };
        assert_eq!(roundtrip(headers.clone()), headers);
        let data = Frame::Data { stream: StreamId::new(1), len: 1200, end_stream: true };
        assert_eq!(roundtrip(data.clone()), data);
    }

    #[test]
    fn goaway_rst_window_ping_roundtrip() {
        for frame in [
            Frame::GoAway { last_stream: StreamId::new(7), error_code: 0 },
            Frame::RstStream { stream: StreamId::new(5), error_code: 8 },
            Frame::WindowUpdate { stream: StreamId::CONNECTION, increment: 65_535 },
            Frame::Ping { ack: true, payload: 0xDEAD_BEEF },
        ] {
            assert_eq!(roundtrip(frame.clone()), frame);
        }
    }

    #[test]
    fn origin_frame_roundtrip() {
        let frame = Frame::Origin {
            origins: vec![
                OriginEntry::https(&DomainName::literal("example.com")),
                OriginEntry::https(&DomainName::literal("img.example.com")),
            ],
        };
        let decoded = roundtrip(frame.clone());
        assert_eq!(decoded, frame);
        if let Frame::Origin { origins } = decoded {
            assert_eq!(origins[1].domain(), Some(DomainName::literal("img.example.com")));
        } else {
            unreachable!();
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        let mut empty = Bytes::from_static(b"\x00\x00");
        assert_eq!(Frame::decode(&mut empty), Err(FrameDecodeError::Truncated));
        // Unknown type 0xEE with empty payload.
        let mut unknown = Bytes::from_static(&[0, 0, 0, 0xEE, 0, 0, 0, 0, 0]);
        assert_eq!(Frame::decode(&mut unknown), Err(FrameDecodeError::UnknownType(0xEE)));
        // RST_STREAM with a short payload.
        let mut short = Bytes::from_static(&[0, 0, 2, 0x3, 0, 0, 0, 0, 1, 0, 0]);
        assert_eq!(Frame::decode(&mut short), Err(FrameDecodeError::BadPayload(FrameType::RstStream)));
    }

    #[test]
    fn frame_type_codes_are_bijective_for_known_types() {
        for t in [
            FrameType::Data,
            FrameType::Headers,
            FrameType::Priority,
            FrameType::RstStream,
            FrameType::Settings,
            FrameType::PushPromise,
            FrameType::Ping,
            FrameType::GoAway,
            FrameType::WindowUpdate,
            FrameType::Continuation,
            FrameType::Origin,
        ] {
            assert_eq!(FrameType::from_code(t.code()), Some(t));
        }
        assert_eq!(FrameType::from_code(0xAB), None);
    }

    #[test]
    fn stream_ids_are_preserved() {
        let frame = Frame::Headers { stream: StreamId::new(101), block: vec![], end_stream: true };
        assert_eq!(roundtrip(frame).stream_id(), StreamId::new(101));
        let conn_level = Frame::Settings { ack: false, parameters: vec![] };
        assert_eq!(conn_level.stream_id(), StreamId::CONNECTION);
    }
}
