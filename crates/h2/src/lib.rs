//! # netsim-h2
//!
//! An HTTP/2 substrate for the `connreuse` simulation.
//!
//! The paper studies when browsers open *more than one* HTTP/2 connection
//! even though RFC 7540 was designed around a single multiplexed connection
//! per server. To reason about that, the simulation needs a faithful model of
//! the protocol pieces that govern connection reuse:
//!
//! * [`frame`] — the HTTP/2 framing layer (RFC 7540 §4/§6) plus the ORIGIN
//!   frame of RFC 8336, with a binary codec over [`bytes`],
//! * [`hpack`] — a compact HPACK model (static table + dynamic table) so the
//!   cost of restarting header compression on redundant connections can be
//!   quantified,
//! * [`settings`] — connection settings exchanged in SETTINGS frames,
//! * [`stream`] — the per-stream state machine (§5.1),
//! * [`cwnd`] — the cold congestion-window model: the slow-start round trips
//!   a fresh connection pays that a reused one would not (the transfer-side
//!   cost of redundancy, priced by `netsim-cost`),
//! * [`connection`] — an HTTP/2 session: stream bookkeeping, flow control,
//!   the TLS certificate presented at establishment, the ORIGIN set, 421
//!   exclusions and GOAWAY handling,
//! * [`reuse`] — the §9.1.1 Connection Reuse predicate that decides whether a
//!   request for another domain may ride an existing connection, and a
//!   diagnosis of *why not* when it may not (the paper's CERT / IP causes).

// The zero-allocation visit fast path made these hot paths clone-free;
// keep them that way.
#![deny(clippy::redundant_clone)]
#![deny(clippy::clone_on_copy)]

pub mod connection;
pub mod cwnd;
pub mod frame;
pub mod hpack;
pub mod reuse;
pub mod settings;
pub mod stream;

pub use connection::{CloseReason, Connection, ConnectionError, ConnectionState};
pub use cwnd::{slow_start_rounds, INITIAL_CWND_OCTETS};
pub use frame::{Frame, FrameDecodeError, FrameType, OriginEntry};
pub use hpack::{Header, HpackContext};
pub use reuse::{RefusalSet, ReuseDecision, ReuseRefusal};
pub use settings::Settings;
pub use stream::{StreamError, StreamId, StreamState};
