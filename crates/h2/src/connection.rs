//! An HTTP/2 connection (session) as the browser sees it.
//!
//! The connection object carries everything the reuse decision and the later
//! analysis need: the destination IP and port, the TLS certificate presented
//! during the handshake, the domain the connection was initially opened for,
//! whether requests on it carry credentials (the Fetch "privacy mode"
//! partition), which domains the server refused with HTTP 421, an optional
//! RFC 8336 origin set, and the stream/transfer bookkeeping that the HAR and
//! NetLog substrates serialise.

use crate::hpack::HpackContext;
use crate::settings::Settings;
use crate::stream::{StreamId, StreamState};
use netsim_tls::Certificate;
use netsim_types::{ConnectionId, DomainName, Instant, IpAddr, Origin};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// Lifecycle state of a connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConnectionState {
    /// Established and usable for new streams.
    Open,
    /// The server sent GOAWAY: existing streams finish, no new streams.
    GoingAway,
    /// Fully closed.
    Closed,
}

/// Why a connection was torn down — lifecycle accounting for the pooled,
/// multi-page session model. Single-page visits close connections implicitly
/// (the visit ends) and leave the reason unset; the pool records which of its
/// policies pulled the trigger so fleet reports can attribute churn.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CloseReason {
    /// Sat unused in the pool past the client's idle timeout.
    IdleTimeout,
    /// Evicted because the pool hit its max-size cap (LRU victim).
    PoolCapacity,
    /// The server's own connection lifetime expired (lifetime churn).
    ServerLifetime,
    /// The user session ended and drained its pool.
    SessionEnd,
    /// The transport was reset mid-transfer (injected fault); the request in
    /// flight failed and was retried on a fresh connection.
    TransportReset,
    /// A pooled connection turned out to be dead when the session tried to
    /// reuse it (the server hung up while it was parked).
    DeadOnReuse,
}

/// Errors from connection operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConnectionError {
    /// A new stream was requested but the connection no longer accepts any.
    NotAcceptingStreams(ConnectionState),
    /// The peer's MAX_CONCURRENT_STREAMS limit is reached.
    ConcurrencyLimit(u32),
    /// The referenced stream does not exist.
    UnknownStream(StreamId),
}

impl fmt::Display for ConnectionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConnectionError::NotAcceptingStreams(state) => {
                write!(f, "connection in state {state:?} does not accept new streams")
            }
            ConnectionError::ConcurrencyLimit(limit) => {
                write!(f, "peer concurrency limit of {limit} streams reached")
            }
            ConnectionError::UnknownStream(id) => write!(f, "unknown {id}"),
        }
    }
}

impl std::error::Error for ConnectionError {}

/// One HTTP/2 session.
///
/// `PartialEq` compares the full logical state (heap capacities excluded by
/// construction) — its main consumer is the test pinning
/// [`Connection::reestablish`] to [`Connection::establish`] field for field.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Connection {
    /// Identifier, equal to the socket id recorded in HAR files.
    pub id: ConnectionId,
    /// The origin whose request caused this connection to be opened.
    pub initial_origin: Origin,
    /// Destination address the transport connected to.
    pub remote_ip: IpAddr,
    /// Destination port.
    pub port: u16,
    /// The certificate the server presented for the SNI of `initial_origin`.
    /// Shared with the issuing store — presenting a certificate never copies
    /// its SAN list.
    pub certificate: Arc<Certificate>,
    /// Whether requests on this connection include credentials (cookies /
    /// client certificates). Under the Fetch Standard, credentialed and
    /// credential-less requests must not share a connection.
    pub credentialed: bool,
    /// When the connection became usable.
    pub established_at: Instant,
    /// When it was closed, if it has been.
    pub closed_at: Option<Instant>,
    /// Why it was closed, when a pool lifecycle policy did it. `None` for an
    /// open connection and for the implicit end-of-visit close.
    pub close_reason: Option<CloseReason>,
    /// Lifecycle state.
    pub state: ConnectionState,
    /// Our settings.
    pub local_settings: Settings,
    /// The peer's settings.
    pub remote_settings: Settings,
    /// Domains the server answered with HTTP 421 (Misdirected Request):
    /// excluded from future reuse on this connection.
    pub excluded_domains: BTreeSet<DomainName>,
    /// The origin set announced via an RFC 8336 ORIGIN frame, if any.
    pub origin_set: Option<BTreeSet<DomainName>>,
    /// Streams in open order. A `Vec` (rather than a map) so that a pooled
    /// connection shell retains its capacity across visits; streams per
    /// connection are few, so lookups stay linear.
    streams: Vec<(StreamId, StreamState)>,
    /// Number of entries in `streams` whose state is not closed, maintained
    /// incrementally so the reuse predicate's concurrency check is O(1).
    open_count: u32,
    next_stream: StreamId,
    encoder: HpackContext,
    /// Number of requests sent on this connection.
    pub requests_sent: u64,
    /// Total encoded header octets sent.
    pub header_octets_sent: u64,
    /// Total body octets received.
    pub body_octets_received: u64,
}

impl Connection {
    /// Establish a connection.
    #[allow(clippy::too_many_arguments)]
    pub fn establish(
        id: ConnectionId,
        initial_origin: Origin,
        remote_ip: IpAddr,
        certificate: Arc<Certificate>,
        credentialed: bool,
        established_at: Instant,
        remote_settings: Settings,
    ) -> Self {
        let port = initial_origin.port;
        Connection {
            id,
            initial_origin,
            remote_ip,
            port,
            certificate,
            credentialed,
            established_at,
            closed_at: None,
            close_reason: None,
            state: ConnectionState::Open,
            local_settings: Settings::chromium_client(),
            remote_settings,
            excluded_domains: BTreeSet::new(),
            origin_set: None,
            streams: Vec::new(),
            open_count: 0,
            next_stream: StreamId::FIRST_CLIENT,
            encoder: HpackContext::default(),
            requests_sent: 0,
            header_octets_sent: 0,
            body_octets_received: 0,
        }
    }

    /// Re-establish a pooled connection shell in place, exactly as
    /// [`Connection::establish`] would construct it but retaining the heap
    /// capacity of the stream table and HPACK dynamic table. This is the
    /// zero-allocation path the per-worker visit scratch uses: recycled
    /// shells make opening a connection allocation-free in the steady state.
    #[allow(clippy::too_many_arguments)]
    pub fn reestablish(
        &mut self,
        id: ConnectionId,
        initial_origin: Origin,
        remote_ip: IpAddr,
        certificate: Arc<Certificate>,
        credentialed: bool,
        established_at: Instant,
        remote_settings: Settings,
    ) {
        self.id = id;
        self.port = initial_origin.port;
        self.initial_origin = initial_origin;
        self.remote_ip = remote_ip;
        self.certificate = certificate;
        self.credentialed = credentialed;
        self.established_at = established_at;
        self.closed_at = None;
        self.close_reason = None;
        self.state = ConnectionState::Open;
        self.local_settings = Settings::chromium_client();
        self.remote_settings = remote_settings;
        self.excluded_domains.clear();
        self.origin_set = None;
        self.streams.clear();
        self.open_count = 0;
        self.next_stream = StreamId::FIRST_CLIENT;
        self.encoder.reset();
        self.requests_sent = 0;
        self.header_octets_sent = 0;
        self.body_octets_received = 0;
    }

    /// The domain the connection was initially opened for.
    pub fn initial_domain(&self) -> &DomainName {
        &self.initial_origin.host
    }

    /// Number of currently open (not closed) streams.
    pub fn open_streams(&self) -> usize {
        debug_assert_eq!(
            self.open_count as usize,
            self.streams.iter().filter(|(_, s)| !s.is_closed()).count(),
            "open-stream counter out of sync"
        );
        self.open_count as usize
    }

    /// Total streams ever opened.
    pub fn total_streams(&self) -> usize {
        self.streams.len()
    }

    /// `true` if a new stream can be opened right now.
    pub fn can_open_stream(&self) -> bool {
        self.state == ConnectionState::Open
            && (self.open_streams() as u32) < self.remote_settings.max_concurrent_streams
    }

    /// Send a request for `authority`/`path`, opening a new stream. Returns
    /// the stream id. The header block is HPACK-encoded against the
    /// connection's encoder context so repeated requests get cheaper.
    pub fn send_request(
        &mut self,
        authority: &DomainName,
        path: &str,
        cookie: Option<&str>,
    ) -> Result<StreamId, ConnectionError> {
        if self.state != ConnectionState::Open {
            return Err(ConnectionError::NotAcceptingStreams(self.state));
        }
        if self.open_streams() as u32 >= self.remote_settings.max_concurrent_streams {
            return Err(ConnectionError::ConcurrencyLimit(self.remote_settings.max_concurrent_streams));
        }
        let stream_id = self.next_stream;
        self.next_stream = self.next_stream.next_same_peer();
        let encoded = self.encoder.encode_request_size(authority.as_str(), path, cookie);
        self.header_octets_sent += encoded as u64;
        self.requests_sent += 1;
        let state = StreamState::Idle.send_headers(true).expect("idle stream always accepts HEADERS");
        if !state.is_closed() {
            self.open_count += 1;
        }
        self.streams.push((stream_id, state));
        Ok(stream_id)
    }

    /// Record the response for `stream`: status code and body size. A 421
    /// response marks `domain` as excluded from reuse on this connection.
    pub fn complete_response(
        &mut self,
        stream: StreamId,
        domain: &DomainName,
        status: u16,
        body_octets: u64,
    ) -> Result<(), ConnectionError> {
        // Newest first: the overwhelmingly common case is completing the
        // stream that was just opened (the last entry).
        let state = self
            .streams
            .iter_mut()
            .rev()
            .find_map(|(id, state)| (*id == stream).then_some(state))
            .ok_or(ConnectionError::UnknownStream(stream))?;
        let was_open = !state.is_closed();
        *state = state.receive_end_stream().unwrap_or(StreamState::Closed);
        if was_open && state.is_closed() {
            self.open_count -= 1;
        }
        self.body_octets_received += body_octets;
        if status == 421 {
            self.excluded_domains.insert(*domain);
        }
        Ok(())
    }

    /// Handle a received ORIGIN frame: replace the origin set.
    pub fn receive_origin_set(&mut self, origins: impl IntoIterator<Item = DomainName>) {
        self.origin_set = Some(origins.into_iter().collect());
    }

    /// Handle a received GOAWAY.
    pub fn receive_goaway(&mut self) {
        if self.state == ConnectionState::Open {
            self.state = ConnectionState::GoingAway;
        }
    }

    /// Close the connection at `now`.
    pub fn close(&mut self, now: Instant) {
        self.state = ConnectionState::Closed;
        if self.closed_at.is_none() {
            self.closed_at = Some(now);
        }
    }

    /// Close the connection at `now`, recording which pool lifecycle policy
    /// closed it. The first close wins: a later call never overwrites the
    /// recorded time or reason.
    pub fn close_with_reason(&mut self, now: Instant, reason: CloseReason) {
        if self.closed_at.is_none() {
            self.close_reason = Some(reason);
        }
        self.close(now);
    }

    /// `true` if the connection is usable for new requests at `now` (it has
    /// been established and not yet closed).
    pub fn is_open_at(&self, now: Instant) -> bool {
        now >= self.established_at
            && self.closed_at.map(|closed| now < closed).unwrap_or(true)
            && self.state != ConnectionState::Closed
    }

    /// The connection's lifetime, if it has closed.
    pub fn lifetime(&self) -> Option<netsim_types::Duration> {
        self.closed_at.map(|closed| closed - self.established_at)
    }

    /// `true` if the presented certificate covers `domain` and the server has
    /// not excluded it via 421.
    pub fn covers_domain(&self, domain: &DomainName) -> bool {
        !self.excluded_domains.contains(domain) && self.certificate.covers(domain)
    }

    /// The HPACK compression ratio achieved on this connection so far.
    pub fn header_compression_ratio(&self) -> f64 {
        self.encoder.compression_ratio()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim_tls::{CertificateStore, IssuancePolicy, Issuer};

    fn d(s: &str) -> DomainName {
        DomainName::literal(s)
    }

    fn certificate_for(domains: &[&str]) -> Arc<Certificate> {
        let mut store = CertificateStore::new();
        let names: Vec<DomainName> = domains.iter().map(|s| d(s)).collect();
        let ids =
            store.issue_with_policy(Issuer::digicert(), &IssuancePolicy::SharedSan, &names, Instant::EPOCH);
        Arc::clone(store.get_arc(ids[0]).unwrap())
    }

    fn connection() -> Connection {
        Connection::establish(
            ConnectionId(1),
            Origin::https(d("www.example.com")),
            IpAddr::new(192, 0, 2, 10),
            certificate_for(&["www.example.com", "img.example.com"]),
            true,
            Instant::EPOCH,
            Settings::default(),
        )
    }

    #[test]
    fn reestablish_equals_a_fresh_establish() {
        // A pooled shell that lived a full life — requests, 421 exclusion,
        // origin set, GOAWAY, close — must come back exactly as
        // `Connection::establish` would construct it. `Connection:
        // PartialEq` covers every logical field, so a forgotten reset in
        // `reestablish` fails this test directly.
        let mut shell = connection();
        let s1 = shell.send_request(&d("www.example.com"), "/", Some("sid=1")).unwrap();
        shell.complete_response(s1, &d("www.example.com"), 200, 1_000).unwrap();
        let s2 = shell.send_request(&d("img.example.com"), "/x.png", None).unwrap();
        shell.complete_response(s2, &d("img.example.com"), 421, 0).unwrap();
        shell.receive_origin_set([d("img.example.com")]);
        shell.receive_goaway();
        shell.close_with_reason(Instant::from_millis(9_000), CloseReason::IdleTimeout);

        let certificate = certificate_for(&["shop.example.org"]);
        shell.reestablish(
            ConnectionId(77),
            Origin::https(d("shop.example.org")),
            IpAddr::new(10, 1, 2, 3),
            Arc::clone(&certificate),
            false,
            Instant::from_millis(12_345),
            Settings::default(),
        );
        let fresh = Connection::establish(
            ConnectionId(77),
            Origin::https(d("shop.example.org")),
            IpAddr::new(10, 1, 2, 3),
            certificate,
            false,
            Instant::from_millis(12_345),
            Settings::default(),
        );
        assert_eq!(shell, fresh);
    }

    #[test]
    fn establish_and_send_requests() {
        let mut conn = connection();
        assert!(conn.can_open_stream());
        let s1 = conn.send_request(&d("www.example.com"), "/", Some("sid=1")).unwrap();
        let s2 = conn.send_request(&d("img.example.com"), "/logo.png", None).unwrap();
        assert_eq!(s1, StreamId::new(1));
        assert_eq!(s2, StreamId::new(3));
        assert_eq!(conn.open_streams(), 2);
        assert_eq!(conn.requests_sent, 2);
        conn.complete_response(s1, &d("www.example.com"), 200, 15_000).unwrap();
        assert_eq!(conn.open_streams(), 1);
        assert_eq!(conn.body_octets_received, 15_000);
    }

    #[test]
    fn concurrency_limit_is_enforced() {
        let mut conn = connection();
        conn.remote_settings.max_concurrent_streams = 2;
        conn.send_request(&d("www.example.com"), "/a", None).unwrap();
        conn.send_request(&d("www.example.com"), "/b", None).unwrap();
        let err = conn.send_request(&d("www.example.com"), "/c", None).unwrap_err();
        assert_eq!(err, ConnectionError::ConcurrencyLimit(2));
    }

    #[test]
    fn http_421_excludes_domain_from_reuse() {
        let mut conn = connection();
        assert!(conn.covers_domain(&d("img.example.com")));
        let s = conn.send_request(&d("img.example.com"), "/x.png", None).unwrap();
        conn.complete_response(s, &d("img.example.com"), 421, 0).unwrap();
        assert!(!conn.covers_domain(&d("img.example.com")));
        assert!(conn.covers_domain(&d("www.example.com")));
    }

    #[test]
    fn goaway_then_close_lifecycle() {
        let mut conn = connection();
        conn.receive_goaway();
        assert_eq!(conn.state, ConnectionState::GoingAway);
        assert!(conn.send_request(&d("www.example.com"), "/", None).is_err());
        assert!(conn.is_open_at(Instant::from_millis(100)));
        conn.close(Instant::from_millis(5000));
        assert!(!conn.is_open_at(Instant::from_millis(6000)));
        assert_eq!(conn.lifetime().unwrap().as_millis(), 5000);
        assert_eq!(conn.state, ConnectionState::Closed);
    }

    #[test]
    fn close_with_reason_records_the_first_close_only() {
        let mut conn = connection();
        assert_eq!(conn.close_reason, None);
        conn.close_with_reason(Instant::from_millis(4_000), CloseReason::ServerLifetime);
        assert_eq!(conn.close_reason, Some(CloseReason::ServerLifetime));
        assert_eq!(conn.closed_at, Some(Instant::from_millis(4_000)));
        // Already closed: neither the time nor the reason moves.
        conn.close_with_reason(Instant::from_millis(9_000), CloseReason::SessionEnd);
        assert_eq!(conn.close_reason, Some(CloseReason::ServerLifetime));
        assert_eq!(conn.closed_at, Some(Instant::from_millis(4_000)));
        // A plain close never invents a reason.
        let mut plain = connection();
        plain.close(Instant::from_millis(1_000));
        assert_eq!(plain.close_reason, None);
    }

    #[test]
    fn unknown_stream_errors() {
        let mut conn = connection();
        let err = conn.complete_response(StreamId::new(99), &d("www.example.com"), 200, 0).unwrap_err();
        assert_eq!(err, ConnectionError::UnknownStream(StreamId::new(99)));
    }

    #[test]
    fn origin_set_replaces_previous() {
        let mut conn = connection();
        assert!(conn.origin_set.is_none());
        conn.receive_origin_set([d("a.example.com"), d("b.example.com")]);
        conn.receive_origin_set([d("c.example.com")]);
        let set = conn.origin_set.as_ref().unwrap();
        assert_eq!(set.len(), 1);
        assert!(set.contains(&d("c.example.com")));
    }

    #[test]
    fn header_compression_improves_over_connection_lifetime() {
        let mut conn = connection();
        for i in 0..10 {
            let s = conn.send_request(&d("www.example.com"), &format!("/asset-{i}.js"), None).unwrap();
            conn.complete_response(s, &d("www.example.com"), 200, 500).unwrap();
        }
        assert!(conn.header_compression_ratio() < 0.5);
        assert!(conn.header_octets_sent > 0);
    }
}
