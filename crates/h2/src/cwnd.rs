//! Cold congestion windows: the transfer-time price of a fresh connection.
//!
//! §2.1 of the paper lists slow start among the costs of every additional
//! connection: a new TCP connection starts with an initial window of ten
//! segments (RFC 6928) and must double it once per round trip before it can
//! saturate the path. A request that *reuses* an existing connection rides a
//! window that earlier transfers already grew; a request on a redundant
//! connection pays the growth again from scratch.
//!
//! The model here is the deterministic textbook form the cost accounting
//! engine needs: [`slow_start_rounds`] counts the round trips an idealised
//! slow start (window doubling every RTT, no loss) needs to deliver a byte
//! total from a cold window. The count is **subadditive** — delivering two
//! byte totals on one connection never takes more rounds than delivering
//! them on two cold connections — which is exactly why coalescing saves
//! latency and why the sweep's cost is monotone under mitigation.

/// Initial congestion window: 10 segments of 1460 octets (RFC 6928 IW10).
pub const INITIAL_CWND_OCTETS: u64 = 14_600;

/// Round trips an idealised slow start needs to deliver `octets` from a cold
/// window: the window starts at [`INITIAL_CWND_OCTETS`] and doubles each
/// round until the running total covers the transfer. Zero octets cost zero
/// rounds.
pub fn slow_start_rounds(octets: u64) -> u32 {
    let mut delivered = 0u64;
    let mut window = INITIAL_CWND_OCTETS;
    let mut rounds = 0u32;
    while delivered < octets {
        delivered = delivered.saturating_add(window);
        window = window.saturating_mul(2);
        rounds += 1;
    }
    rounds
}

impl crate::Connection {
    /// Extra round trips this connection spent growing its cold congestion
    /// window for the bytes it delivered — the per-connection slow-start
    /// penalty the cost model charges.
    pub fn cold_cwnd_rtts(&self) -> u32 {
        slow_start_rounds(self.body_octets_received)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_follow_the_doubling_schedule() {
        assert_eq!(slow_start_rounds(0), 0);
        assert_eq!(slow_start_rounds(1), 1);
        assert_eq!(slow_start_rounds(INITIAL_CWND_OCTETS), 1);
        assert_eq!(slow_start_rounds(INITIAL_CWND_OCTETS + 1), 2);
        // 1 MiB: 14600 × (2^k − 1) ≥ 1 MiB at k = 7.
        assert_eq!(slow_start_rounds(1 << 20), 7);
    }

    #[test]
    fn rounds_are_monotone_in_octets() {
        let mut previous = 0;
        for octets in [0u64, 1, 10_000, 14_600, 20_000, 100_000, 1 << 20, 1 << 30] {
            let rounds = slow_start_rounds(octets);
            assert!(rounds >= previous, "rounds must not decrease at {octets}");
            previous = rounds;
        }
    }

    #[test]
    fn coalescing_is_subadditive() {
        // Delivering a + b on one warm-growing connection never needs more
        // rounds than two cold connections delivering a and b separately —
        // the inequality behind cost monotonicity under mitigation.
        for a in [1u64, 5_000, 14_600, 50_000, 300_000, 1 << 22] {
            for b in [1u64, 9_999, 20_000, 123_456, 1 << 21] {
                assert!(
                    slow_start_rounds(a + b) <= slow_start_rounds(a) + slow_start_rounds(b),
                    "rounds({}) > rounds({a}) + rounds({b})",
                    a + b
                );
            }
        }
    }

    #[test]
    fn huge_transfers_do_not_overflow() {
        assert!(slow_start_rounds(u64::MAX) < 64);
    }
}
