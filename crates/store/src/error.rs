//! Typed failures of the shard store.
//!
//! Every way a persisted store can disappoint a reader gets its own variant,
//! so callers (and the `connreuse-serve` bin, which maps any [`StoreError`]
//! to exit status 1) can say *what* is wrong with the artifact instead of
//! "could not load store". Corruption variants carry the offending path;
//! mismatch variants carry both sides of the disagreement.

use netsim_types::Fingerprint;

/// Everything that can go wrong opening, reading or building a shard store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io {
        /// Path the operation touched.
        path: String,
        /// The OS error, stringified.
        message: String,
    },
    /// A required file (manifest or shard) does not exist.
    Missing {
        /// The absent path.
        path: String,
    },
    /// A shard file is shorter (or longer) than its header promises.
    Truncated {
        /// The offending shard path.
        path: String,
        /// Bytes the header-derived layout requires.
        expected: usize,
        /// Bytes actually present.
        found: usize,
    },
    /// The first eight bytes are not the shard magic.
    BadMagic {
        /// The offending shard path.
        path: String,
    },
    /// The shard was written under a different format schema.
    SchemaMismatch {
        /// The offending shard path.
        path: String,
        /// Schema the file carries.
        found: u64,
        /// Schema this reader understands.
        expected: u64,
    },
    /// The shard's fixed record width disagrees with this build's layout —
    /// a counter was added or removed without a schema bump.
    RecordWidthMismatch {
        /// The offending shard path.
        path: String,
        /// Words per record the file carries.
        found: u64,
        /// Words per record this reader expects.
        expected: u64,
    },
    /// The trailing FNV-1a checksum does not cover the bytes on disk.
    ChecksumMismatch {
        /// The offending shard path.
        path: String,
    },
    /// The artifact was produced under a different configuration.
    FingerprintMismatch {
        /// Fingerprint the artifact carries.
        found: u64,
        /// Fingerprint of the configuration being served.
        expected: u64,
    },
    /// The manifest exists but cannot be parsed, or its schema is foreign.
    ManifestCorrupt {
        /// The manifest path.
        path: String,
        /// What went wrong.
        message: String,
    },
    /// A decoded shard disagrees with the layout the store promises
    /// (chunk bounds, record keys or chunk index off).
    LayoutMismatch {
        /// The offending shard path.
        path: String,
        /// What disagrees.
        message: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { path, message } => write!(f, "io error at {path}: {message}"),
            StoreError::Missing { path } => write!(f, "missing file: {path}"),
            StoreError::Truncated { path, expected, found } => {
                write!(f, "truncated shard {path}: expected {expected} bytes, found {found}")
            }
            StoreError::BadMagic { path } => write!(f, "not a shard file (bad magic): {path}"),
            StoreError::SchemaMismatch { path, found, expected } => {
                write!(f, "shard {path} has schema {found}, this reader expects {expected}")
            }
            StoreError::RecordWidthMismatch { path, found, expected } => {
                write!(f, "shard {path} has {found}-word records, this reader expects {expected}")
            }
            StoreError::ChecksumMismatch { path } => {
                write!(f, "checksum mismatch in shard {path} (corrupt bytes)")
            }
            StoreError::FingerprintMismatch { found, expected } => write!(
                f,
                "store was built under config fingerprint {}, asked to serve {} — rebuild with \
                 --build or point at the matching store",
                Fingerprint::from_value(*found),
                Fingerprint::from_value(*expected),
            ),
            StoreError::ManifestCorrupt { path, message } => {
                write!(f, "corrupt manifest {path}: {message}")
            }
            StoreError::LayoutMismatch { path, message } => {
                write!(f, "shard {path} does not match the store layout: {message}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl StoreError {
    /// Wrap an [`std::io::Error`] with the path it struck.
    pub fn io(path: &std::path::Path, error: std::io::Error) -> Self {
        if error.kind() == std::io::ErrorKind::NotFound {
            StoreError::Missing { path: path.display().to_string() }
        } else {
            StoreError::Io { path: path.display().to_string(), message: error.to_string() }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_artifact_and_the_disagreement() {
        let error = StoreError::FingerprintMismatch { found: 1, expected: 2 };
        let text = error.to_string();
        assert!(text.contains("0000000000000001"));
        assert!(text.contains("0000000000000002"));

        let truncated =
            StoreError::Truncated { path: "shards/chunk-000001.shard".into(), expected: 400, found: 10 };
        assert!(truncated.to_string().contains("chunk-000001"));
        assert!(truncated.to_string().contains("400"));
    }

    #[test]
    fn not_found_maps_to_missing() {
        let error = std::io::Error::from(std::io::ErrorKind::NotFound);
        assert_eq!(
            StoreError::io(std::path::Path::new("x"), error),
            StoreError::Missing { path: "x".to_string() }
        );
    }
}
