//! The store manifest: the commit point of a build.
//!
//! `MANIFEST.json` is written **last**, after every shard file it names is on
//! disk — a store with shards but no manifest is an interrupted build, and
//! [`crate::ShardStore::open`] refuses it with
//! [`crate::StoreError::Missing`]. The manifest names the configuration
//! fingerprint, the chunk layout and each shard's checksum, so a reader can
//! cross-check every shard it loads without trusting file names.
//!
//! JSON (not the binary word format) on purpose: the manifest is the one
//! artifact operators read and diff by hand. The vendored `serde_json`
//! round-trips u64 exactly, so checksums and fingerprints survive verbatim.

use crate::error::StoreError;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// File name of the manifest inside the store directory.
pub const MANIFEST_FILE: &str = "MANIFEST.json";

/// Manifest format version.
pub const MANIFEST_SCHEMA: u32 = 1;

/// One record key every shard carries, in record order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManifestKey {
    /// The mitigation set's bit pattern.
    pub mitigation_bits: u64,
    /// Index into the store's link-profile list.
    pub profile_index: u64,
}

/// One chunk's entry: where its shard lives and what it must hash to.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManifestChunk {
    /// Chunk index in the layout.
    pub index: u64,
    /// Global rank of the chunk's first site.
    pub start: u64,
    /// Sites in the chunk.
    pub len: u64,
    /// Shard file name, relative to the store's `shards/` directory.
    pub file: String,
    /// FNV-1a checksum of the shard file's bytes (trailer word included).
    pub checksum: u64,
}

/// The persisted description of a complete store.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Manifest {
    /// Manifest format version.
    pub schema: u32,
    /// Configuration fingerprint every shard must carry.
    pub fingerprint: u64,
    /// Total sites across all chunks.
    pub sites: u64,
    /// Record keys every shard stores, in record order.
    pub keys: Vec<ManifestKey>,
    /// One entry per chunk, in chunk order.
    pub chunks: Vec<ManifestChunk>,
}

impl Manifest {
    /// The manifest's path inside `dir`.
    pub fn path(dir: &Path) -> PathBuf {
        dir.join(MANIFEST_FILE)
    }

    /// Load and validate the manifest from a store directory.
    pub fn load(dir: &Path) -> Result<Manifest, StoreError> {
        let path = Manifest::path(dir);
        let text = std::fs::read_to_string(&path).map_err(|error| StoreError::io(&path, error))?;
        let manifest: Manifest = serde_json::from_str(&text).map_err(|error| {
            StoreError::ManifestCorrupt { path: path.display().to_string(), message: format!("{error:?}") }
        })?;
        if manifest.schema != MANIFEST_SCHEMA {
            return Err(StoreError::ManifestCorrupt {
                path: path.display().to_string(),
                message: format!("schema {} (this reader expects {MANIFEST_SCHEMA})", manifest.schema),
            });
        }
        let counted: u64 = manifest.chunks.iter().map(|chunk| chunk.len).sum();
        if counted != manifest.sites {
            return Err(StoreError::ManifestCorrupt {
                path: path.display().to_string(),
                message: format!("chunk lengths sum to {counted}, sites field says {}", manifest.sites),
            });
        }
        Ok(manifest)
    }

    /// Write the manifest atomically (temp file + rename), as the final step
    /// of a build.
    pub fn write(&self, dir: &Path) -> Result<(), StoreError> {
        let path = Manifest::path(dir);
        let json = serde_json::to_string_pretty(self).map_err(|error| StoreError::ManifestCorrupt {
            path: path.display().to_string(),
            message: format!("{error:?}"),
        })?;
        let temp = dir.join(format!("{MANIFEST_FILE}.tmp"));
        std::fs::write(&temp, format!("{json}\n")).map_err(|error| StoreError::io(&temp, error))?;
        std::fs::rename(&temp, &path).map_err(|error| StoreError::io(&path, error))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            schema: MANIFEST_SCHEMA,
            fingerprint: u64::MAX - 5,
            sites: 120,
            keys: vec![
                ManifestKey { mitigation_bits: 0, profile_index: 0 },
                ManifestKey { mitigation_bits: 15, profile_index: 2 },
            ],
            chunks: vec![
                ManifestChunk { index: 0, start: 0, len: 80, file: "chunk-000000.shard".into(), checksum: 7 },
                ManifestChunk {
                    index: 1,
                    start: 80,
                    len: 40,
                    file: "chunk-000001.shard".into(),
                    checksum: u64::MAX,
                },
            ],
        }
    }

    #[test]
    fn manifest_round_trips_through_disk_with_full_u64_precision() {
        let dir = std::env::temp_dir().join(format!("connreuse-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = sample();
        manifest.write(&dir).unwrap();
        let loaded = Manifest::load(&dir).unwrap();
        assert_eq!(loaded, manifest);
        assert_eq!(loaded.chunks[1].checksum, u64::MAX);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_is_a_typed_error() {
        let dir = std::env::temp_dir().join(format!("connreuse-manifest-none-{}", std::process::id()));
        let error = Manifest::load(&dir).unwrap_err();
        assert!(matches!(error, StoreError::Missing { .. }), "{error:?}");
    }

    #[test]
    fn garbage_and_foreign_schema_are_corrupt() {
        let dir = std::env::temp_dir().join(format!("connreuse-manifest-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(Manifest::path(&dir), "{ not json").unwrap();
        assert!(matches!(Manifest::load(&dir).unwrap_err(), StoreError::ManifestCorrupt { .. }));

        let mut foreign = sample();
        foreign.schema = MANIFEST_SCHEMA + 1;
        foreign.write(&dir).unwrap();
        assert!(matches!(Manifest::load(&dir).unwrap_err(), StoreError::ManifestCorrupt { .. }));

        let mut inconsistent = sample();
        inconsistent.sites = 9_999;
        inconsistent.write(&dir).unwrap();
        assert!(matches!(Manifest::load(&dir).unwrap_err(), StoreError::ManifestCorrupt { .. }));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
