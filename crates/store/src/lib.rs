//! # netsim-store
//!
//! The **persistent atlas shard store**: a compact columnar on-disk format
//! for per-chunk classification cause counts and cost totals, with integrity
//! checks and incremental rebuild. This is the first subsystem in the
//! workspace whose output outlives the process — the million-site scale the
//! atlas computes in memory becomes a directory that answers what-if queries
//! for as long as the configuration stands.
//!
//! ## Directory layout
//!
//! ```text
//! <store>/
//!   MANIFEST.json            commit point: fingerprint, layout, checksums
//!   shards/
//!     chunk-000000.shard     one fixed-width binary shard per chunk
//!     chunk-000001.shard
//!     ...
//! ```
//!
//! ## Contracts
//!
//! * **Determinism to disk** — a shard's bytes are a pure function of
//!   (config, chunk), so builds at any thread count, in any steal order,
//!   produce byte-identical directories ([`mod@format`] explains the layout).
//! * **Integrity** — every shard carries a trailing FNV-1a checksum and the
//!   config fingerprint; [`ShardStore::read_chunk`] refuses corrupt or
//!   foreign shards with a typed [`StoreError`] instead of serving wrong
//!   numbers.
//! * **Incremental rebuild** — [`BuildPlan::assess`] decodes what is already
//!   on disk and schedules only chunks whose shard is missing, corrupt, or
//!   written under a different fingerprint/layout. A second build over the
//!   same config therefore rewrites **zero** shards; growing the population
//!   writes only the new chunks (the fingerprint deliberately excludes the
//!   site count).
//! * **Commit point** — [`Manifest`] is written last; a store without one is
//!   an interrupted build and will not open.
//!
//! The semantic layer — what the records *mean*, how chunks are crawled, how
//! queries fold them — lives in `connreuse_experiments::store`; this crate
//! only owns bytes, checksums and plans.

pub mod error;
pub mod format;
pub mod manifest;

pub use error::StoreError;
pub use format::{ShardFile, ShardRecord, HEADER_WORDS, MAGIC, RECORD_WORDS, SHARD_SCHEMA};
pub use manifest::{Manifest, ManifestChunk, ManifestKey, MANIFEST_FILE, MANIFEST_SCHEMA};

use std::path::{Path, PathBuf};

/// Subdirectory holding the binary shards.
pub const SHARDS_DIR: &str = "shards";

/// The shape a complete store must have: which chunks exist, which record
/// keys every shard carries, and the configuration fingerprint everything is
/// stamped with. The builder derives this from its config; [`BuildPlan`] and
/// [`finalize_manifest`] compare disk against it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreLayout {
    /// Configuration fingerprint (see `netsim_types::fingerprint`).
    pub fingerprint: u64,
    /// `(start, len)` per chunk, in chunk order, covering `[0, sites)`.
    pub chunks: Vec<(u64, u64)>,
    /// `(mitigation_bits, profile_index)` per record, in record order.
    pub keys: Vec<(u64, u64)>,
}

impl StoreLayout {
    /// Total sites across all chunks.
    pub fn sites(&self) -> u64 {
        self.chunks.iter().map(|(_, len)| len).sum()
    }

    /// Canonical shard file name of a chunk index.
    pub fn shard_name(index: usize) -> String {
        format!("chunk-{index:06}.shard")
    }

    /// Absolute path of a chunk's shard under `dir`.
    pub fn shard_path(dir: &Path, index: usize) -> PathBuf {
        dir.join(SHARDS_DIR).join(StoreLayout::shard_name(index))
    }

    /// Does a decoded shard match this layout at `index`?
    fn matches(&self, index: usize, shard: &ShardFile) -> bool {
        let (start, len) = self.chunks[index];
        shard.fingerprint == self.fingerprint
            && shard.chunk_index == index as u64
            && shard.start == start
            && shard.len == len
            && shard.records.len() == self.keys.len()
            && shard.records.iter().zip(&self.keys).all(|(record, &(bits, profile))| {
                record.mitigation_bits == bits && record.profile_index == profile
            })
    }
}

/// What an incremental build has to do: which chunks need crawling and which
/// shards already on disk can be kept as-is.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BuildPlan {
    /// Chunk indices whose shard must be (re)written.
    pub dirty: Vec<usize>,
    /// Chunk indices whose existing shard already matches the layout.
    pub clean: Vec<usize>,
    /// Stale files removed from `shards/` (chunks beyond the layout, foreign
    /// names).
    pub removed: Vec<String>,
}

impl BuildPlan {
    /// Compare the store directory against `layout`.
    ///
    /// A chunk is **clean** only if its shard file exists, decodes, passes
    /// the checksum, carries the layout's fingerprint and matches its chunk
    /// bounds and record keys — anything less marks it dirty for recrawl.
    /// Files in `shards/` that no layout chunk claims are deleted (a shrink
    /// of the population, or debris) and reported in
    /// [`BuildPlan::removed`].
    pub fn assess(dir: &Path, layout: &StoreLayout) -> Result<BuildPlan, StoreError> {
        let mut plan = BuildPlan::default();
        for index in 0..layout.chunks.len() {
            let path = StoreLayout::shard_path(dir, index);
            let clean = match std::fs::read(&path) {
                Err(_) => false,
                Ok(bytes) => {
                    match ShardFile::decode(&path.display().to_string(), &bytes, Some(layout.fingerprint)) {
                        Ok(shard) => layout.matches(index, &shard),
                        Err(_) => false,
                    }
                }
            };
            if clean {
                plan.clean.push(index);
            } else {
                plan.dirty.push(index);
            }
        }

        let shards_dir = dir.join(SHARDS_DIR);
        let expected: std::collections::BTreeSet<String> =
            (0..layout.chunks.len()).map(StoreLayout::shard_name).collect();
        if let Ok(entries) = std::fs::read_dir(&shards_dir) {
            for entry in entries.flatten() {
                let name = entry.file_name().to_string_lossy().to_string();
                if !expected.contains(&name) {
                    let path = shards_dir.join(&name);
                    std::fs::remove_file(&path).map_err(|error| StoreError::io(&path, error))?;
                    plan.removed.push(name);
                }
            }
        }
        plan.removed.sort();
        Ok(plan)
    }
}

/// Write one chunk's shard atomically (temp file + rename), creating the
/// `shards/` directory on first use.
pub fn write_shard(dir: &Path, shard: &ShardFile) -> Result<(), StoreError> {
    let shards_dir = dir.join(SHARDS_DIR);
    std::fs::create_dir_all(&shards_dir).map_err(|error| StoreError::io(&shards_dir, error))?;
    let path = StoreLayout::shard_path(dir, shard.chunk_index as usize);
    let temp = shards_dir.join(format!("{}.tmp", StoreLayout::shard_name(shard.chunk_index as usize)));
    std::fs::write(&temp, shard.encode()).map_err(|error| StoreError::io(&temp, error))?;
    std::fs::rename(&temp, &path).map_err(|error| StoreError::io(&path, error))
}

/// Verify every shard the layout requires and commit the manifest — the last
/// step of a build. Fails with the first shard that is missing, corrupt or
/// off-layout; on success the store opens cleanly.
pub fn finalize_manifest(dir: &Path, layout: &StoreLayout) -> Result<Manifest, StoreError> {
    let mut chunks = Vec::with_capacity(layout.chunks.len());
    for (index, &(start, len)) in layout.chunks.iter().enumerate() {
        let path = StoreLayout::shard_path(dir, index);
        let bytes = std::fs::read(&path).map_err(|error| StoreError::io(&path, error))?;
        let shard = ShardFile::decode(&path.display().to_string(), &bytes, Some(layout.fingerprint))?;
        if !layout.matches(index, &shard) {
            return Err(StoreError::LayoutMismatch {
                path: path.display().to_string(),
                message: format!(
                    "chunk {index} expects [{start}, {start}+{len}) with {} records",
                    layout.keys.len()
                ),
            });
        }
        chunks.push(ManifestChunk {
            index: index as u64,
            start,
            len,
            file: StoreLayout::shard_name(index),
            checksum: netsim_types::fnv1a(&bytes),
        });
    }
    let manifest = Manifest {
        schema: MANIFEST_SCHEMA,
        fingerprint: layout.fingerprint,
        sites: layout.sites(),
        keys: layout
            .keys
            .iter()
            .map(|&(mitigation_bits, profile_index)| ManifestKey { mitigation_bits, profile_index })
            .collect(),
        chunks,
    };
    manifest.write(dir)?;
    Ok(manifest)
}

/// An opened, manifest-validated store, ready to serve chunk reads.
#[derive(Clone, Debug)]
pub struct ShardStore {
    dir: PathBuf,
    manifest: Manifest,
}

impl ShardStore {
    /// Open a store directory: load its manifest or refuse.
    pub fn open(dir: &Path) -> Result<Self, StoreError> {
        let manifest = Manifest::load(dir)?;
        Ok(ShardStore { dir: dir.to_path_buf(), manifest })
    }

    /// Open and additionally require the store's fingerprint to match the
    /// configuration being served.
    pub fn open_with_fingerprint(dir: &Path, expected: u64) -> Result<Self, StoreError> {
        let store = ShardStore::open(dir)?;
        if store.manifest.fingerprint != expected {
            return Err(StoreError::FingerprintMismatch { found: store.manifest.fingerprint, expected });
        }
        Ok(store)
    }

    /// The validated manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of chunks the store holds.
    pub fn chunk_count(&self) -> usize {
        self.manifest.chunks.len()
    }

    /// Read and fully verify one chunk's shard: file checksum against the
    /// manifest, format checksum, fingerprint, and chunk bounds.
    pub fn read_chunk(&self, index: usize) -> Result<ShardFile, StoreError> {
        let entry = self.manifest.chunks.get(index).ok_or_else(|| StoreError::LayoutMismatch {
            path: StoreLayout::shard_path(&self.dir, index).display().to_string(),
            message: format!("chunk {index} beyond the manifest's {} chunks", self.manifest.chunks.len()),
        })?;
        let path = self.dir.join(SHARDS_DIR).join(&entry.file);
        let bytes = std::fs::read(&path).map_err(|error| StoreError::io(&path, error))?;
        if netsim_types::fnv1a(&bytes) != entry.checksum {
            return Err(StoreError::ChecksumMismatch { path: path.display().to_string() });
        }
        let shard = ShardFile::decode(&path.display().to_string(), &bytes, Some(self.manifest.fingerprint))?;
        if shard.chunk_index != entry.index || shard.start != entry.start || shard.len != entry.len {
            return Err(StoreError::LayoutMismatch {
                path: path.display().to_string(),
                message: format!(
                    "shard says chunk {} [{}, {}+{}), manifest says chunk {} [{}, {}+{})",
                    shard.chunk_index,
                    shard.start,
                    shard.start,
                    shard.len,
                    entry.index,
                    entry.start,
                    entry.start,
                    entry.len
                ),
            });
        }
        Ok(shard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use connreuse_core::AccumulatorState;
    use netsim_cost::CostTotals;

    fn temp_store(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("connreuse-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn layout() -> StoreLayout {
        StoreLayout {
            fingerprint: 0xabcd_ef01_2345_6789,
            chunks: vec![(0, 40), (40, 40), (80, 20)],
            keys: vec![(0, 0), (0, 1), (15, 2)],
        }
    }

    fn shard_for(layout: &StoreLayout, index: usize, salt: u64) -> ShardFile {
        let (start, len) = layout.chunks[index];
        let records = layout
            .keys
            .iter()
            .map(|&(mitigation_bits, profile_index)| ShardRecord {
                mitigation_bits,
                profile_index,
                accumulator: AccumulatorState {
                    observed_sites: len + salt,
                    total_sites: len,
                    ..AccumulatorState::default()
                },
                requests: salt * 10,
                planned_requests: salt * 12,
                cost: CostTotals::from_words(&std::array::from_fn(|word| salt + word as u64)),
            })
            .collect();
        ShardFile { fingerprint: layout.fingerprint, chunk_index: index as u64, start, len, records }
    }

    fn build(dir: &Path, layout: &StoreLayout) {
        for index in 0..layout.chunks.len() {
            write_shard(dir, &shard_for(layout, index, index as u64 + 1)).unwrap();
        }
        finalize_manifest(dir, layout).unwrap();
    }

    #[test]
    fn fresh_directory_plans_every_chunk_dirty() {
        let dir = temp_store("fresh");
        let plan = BuildPlan::assess(&dir, &layout()).unwrap();
        assert_eq!(plan.dirty, vec![0, 1, 2]);
        assert!(plan.clean.is_empty());
        assert!(plan.removed.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn built_store_plans_zero_dirty_and_opens() {
        let dir = temp_store("built");
        let layout = layout();
        build(&dir, &layout);

        let plan = BuildPlan::assess(&dir, &layout).unwrap();
        assert!(plan.dirty.is_empty(), "{plan:?}");
        assert_eq!(plan.clean, vec![0, 1, 2]);

        let store = ShardStore::open_with_fingerprint(&dir, layout.fingerprint).unwrap();
        assert_eq!(store.chunk_count(), 3);
        assert_eq!(store.manifest().sites, 100);
        for index in 0..3 {
            let shard = store.read_chunk(index).unwrap();
            assert_eq!(shard, shard_for(&layout, index, index as u64 + 1));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fingerprint_change_dirties_everything() {
        let dir = temp_store("refp");
        let mut layout = layout();
        build(&dir, &layout);
        layout.fingerprint ^= 1;
        let plan = BuildPlan::assess(&dir, &layout).unwrap();
        assert_eq!(plan.dirty, vec![0, 1, 2]);
        assert!(ShardStore::open_with_fingerprint(&dir, layout.fingerprint).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn population_growth_dirties_only_new_and_resized_chunks() {
        let dir = temp_store("grow");
        let small = layout();
        build(&dir, &small);
        // Grow: same fingerprint (site count is excluded from it), two more
        // chunks, and the old partial chunk 2 changes length.
        let grown =
            StoreLayout { chunks: vec![(0, 40), (40, 40), (80, 40), (120, 40), (160, 10)], ..small.clone() };
        let plan = BuildPlan::assess(&dir, &grown).unwrap();
        assert_eq!(plan.clean, vec![0, 1]);
        assert_eq!(plan.dirty, vec![2, 3, 4]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shrink_removes_stale_shards() {
        let dir = temp_store("shrink");
        let big = layout();
        build(&dir, &big);
        let shrunk = StoreLayout { chunks: vec![(0, 40)], ..big.clone() };
        let plan = BuildPlan::assess(&dir, &shrunk).unwrap();
        assert_eq!(plan.clean, vec![0]);
        assert!(plan.dirty.is_empty());
        assert_eq!(plan.removed, vec![StoreLayout::shard_name(1), StoreLayout::shard_name(2)]);
        assert!(!StoreLayout::shard_path(&dir, 1).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_shard_is_planned_dirty_and_refused_by_the_reader() {
        let dir = temp_store("corrupt");
        let layout = layout();
        build(&dir, &layout);

        let victim = StoreLayout::shard_path(&dir, 1);
        let mut bytes = std::fs::read(&victim).unwrap();
        let middle = bytes.len() / 2;
        bytes[middle] ^= 0xff;
        std::fs::write(&victim, &bytes).unwrap();

        let plan = BuildPlan::assess(&dir, &layout).unwrap();
        assert_eq!(plan.dirty, vec![1]);
        assert_eq!(plan.clean, vec![0, 2]);

        let store = ShardStore::open(&dir).unwrap();
        let error = store.read_chunk(1).unwrap_err();
        assert!(matches!(error, StoreError::ChecksumMismatch { .. }), "{error:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interrupted_build_without_manifest_does_not_open() {
        let dir = temp_store("nomanifest");
        let layout = layout();
        write_shard(&dir, &shard_for(&layout, 0, 1)).unwrap();
        let error = ShardStore::open(&dir).unwrap_err();
        assert!(matches!(error, StoreError::Missing { .. }), "{error:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn finalize_refuses_a_missing_or_off_layout_shard() {
        let dir = temp_store("finalize");
        let layout = layout();
        write_shard(&dir, &shard_for(&layout, 0, 1)).unwrap();
        // Chunk 1 and 2 never written.
        assert!(matches!(finalize_manifest(&dir, &layout).unwrap_err(), StoreError::Missing { .. }));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rebuild_produces_byte_identical_files() {
        let dir_a = temp_store("bytes-a");
        let dir_b = temp_store("bytes-b");
        let layout = layout();
        build(&dir_a, &layout);
        build(&dir_b, &layout);
        for index in 0..layout.chunks.len() {
            let a = std::fs::read(StoreLayout::shard_path(&dir_a, index)).unwrap();
            let b = std::fs::read(StoreLayout::shard_path(&dir_b, index)).unwrap();
            assert_eq!(a, b, "shard {index} bytes differ between identical builds");
        }
        let a = std::fs::read(Manifest::path(&dir_a)).unwrap();
        let b = std::fs::read(Manifest::path(&dir_b)).unwrap();
        assert_eq!(a, b, "manifest bytes differ between identical builds");
        std::fs::remove_dir_all(&dir_a).unwrap();
        std::fs::remove_dir_all(&dir_b).unwrap();
    }
}
