//! The on-disk shard format: length-prefixed fixed-width records.
//!
//! One shard file persists one population chunk's results for every
//! (mitigation set × link profile) cell:
//!
//! ```text
//! magic    8 bytes   "CRSHARD1"
//! header   7 × u64   schema, config fingerprint, chunk index, start, len,
//!                    record count, words per record (the length prefix)
//! records  count × RECORD_WORDS × u64
//! trailer  1 × u64   FNV-1a checksum over every preceding byte
//! ```
//!
//! All words are little-endian u64. Records are **fixed width** — the header
//! states the width, and a reader built for a different width refuses the
//! file ([`crate::StoreError::RecordWidthMismatch`]) instead of misparsing
//! it. Each record is a key pair (mitigation bits, profile index) followed by
//! the chunk's [`AccumulatorState`] words, its request tallies, and its
//! [`CostTotals`] words — everything the shard-merge monoid needs, nothing
//! derived.
//!
//! Because a record is a pure function of (config, chunk), encoded bytes are
//! **byte-identical across thread counts, rebuilds and machines** — the
//! 4-rule determinism contract extended to disk. CI pins this by building the
//! same store twice and `diff -r`-ing the directories.

use crate::error::StoreError;
use connreuse_core::AccumulatorState;
use netsim_cost::CostTotals;
use netsim_types::fnv1a;

/// First eight bytes of every shard file.
pub const MAGIC: [u8; 8] = *b"CRSHARD1";

/// On-disk format version. Bump when the header or record layout changes.
pub const SHARD_SCHEMA: u64 = 1;

/// Words in the fixed header following the magic.
pub const HEADER_WORDS: usize = 7;

/// Words per record: key pair + accumulator state + request tallies + cost.
pub const RECORD_WORDS: usize = 2 + AccumulatorState::WORDS + 2 + CostTotals::WORDS;

/// One (mitigation set × link profile) cell of one chunk.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardRecord {
    /// The mitigation set's bit pattern ([`netsim_types::MitigationSet::bits`]).
    pub mitigation_bits: u64,
    /// Index into the store's link-profile list.
    pub profile_index: u64,
    /// Classification cause counts for the chunk under this cell.
    pub accumulator: AccumulatorState,
    /// Requests sent across the chunk's visits.
    pub requests: u64,
    /// Requests planned across the chunk's generated sites.
    pub planned_requests: u64,
    /// Aggregate visit timelines for the chunk under this cell.
    pub cost: CostTotals,
}

impl ShardRecord {
    /// The fixed-width word layout (frozen order; a change is a schema bump).
    pub fn to_words(&self) -> [u64; RECORD_WORDS] {
        let mut words = [0u64; RECORD_WORDS];
        words[0] = self.mitigation_bits;
        words[1] = self.profile_index;
        let mut cursor = 2;
        words[cursor..cursor + AccumulatorState::WORDS].copy_from_slice(&self.accumulator.to_words());
        cursor += AccumulatorState::WORDS;
        words[cursor] = self.requests;
        words[cursor + 1] = self.planned_requests;
        cursor += 2;
        words[cursor..cursor + CostTotals::WORDS].copy_from_slice(&self.cost.to_words());
        words
    }

    /// Rebuild from the fixed-width word layout.
    pub fn from_words(words: &[u64; RECORD_WORDS]) -> Self {
        let mut accumulator = [0u64; AccumulatorState::WORDS];
        accumulator.copy_from_slice(&words[2..2 + AccumulatorState::WORDS]);
        let tally_base = 2 + AccumulatorState::WORDS;
        let mut cost = [0u64; CostTotals::WORDS];
        cost.copy_from_slice(&words[tally_base + 2..]);
        ShardRecord {
            mitigation_bits: words[0],
            profile_index: words[1],
            accumulator: AccumulatorState::from_words(&accumulator),
            requests: words[tally_base],
            planned_requests: words[tally_base + 1],
            cost: CostTotals::from_words(&cost),
        }
    }
}

/// One chunk's persisted shard: header fields plus its records.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardFile {
    /// Configuration fingerprint the shard was computed under.
    pub fingerprint: u64,
    /// Index of the chunk in the store layout.
    pub chunk_index: u64,
    /// Global rank of the chunk's first site.
    pub start: u64,
    /// Sites in the chunk.
    pub len: u64,
    /// One record per (mitigation × profile) cell, in layout key order.
    pub records: Vec<ShardRecord>,
}

impl ShardFile {
    /// Serialise to the on-disk byte layout (magic, header, records,
    /// checksum). Deterministic: same shard, same bytes.
    pub fn encode(&self) -> Vec<u8> {
        let words = HEADER_WORDS + self.records.len() * RECORD_WORDS;
        let mut bytes = Vec::with_capacity(MAGIC.len() + (words + 1) * 8);
        bytes.extend_from_slice(&MAGIC);
        for word in [
            SHARD_SCHEMA,
            self.fingerprint,
            self.chunk_index,
            self.start,
            self.len,
            self.records.len() as u64,
            RECORD_WORDS as u64,
        ] {
            bytes.extend_from_slice(&word.to_le_bytes());
        }
        for record in &self.records {
            for word in record.to_words() {
                bytes.extend_from_slice(&word.to_le_bytes());
            }
        }
        let checksum = fnv1a(&bytes);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        bytes
    }

    /// Parse and verify a shard file's bytes. `path` labels errors;
    /// `expected_fingerprint` (when given) refuses shards built under a
    /// different configuration.
    ///
    /// Verification order: size envelope → magic → schema → record width →
    /// exact length → checksum → fingerprint. A file failing an earlier check
    /// reports that failure even if later checks would also fail.
    pub fn decode(
        path: &str,
        bytes: &[u8],
        expected_fingerprint: Option<u64>,
    ) -> Result<ShardFile, StoreError> {
        let minimum = MAGIC.len() + (HEADER_WORDS + 1) * 8;
        if bytes.len() < minimum {
            return Err(StoreError::Truncated {
                path: path.to_string(),
                expected: minimum,
                found: bytes.len(),
            });
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(StoreError::BadMagic { path: path.to_string() });
        }
        let word = |index: usize| {
            let offset = MAGIC.len() + index * 8;
            u64::from_le_bytes(bytes[offset..offset + 8].try_into().expect("8-byte slice"))
        };
        let schema = word(0);
        if schema != SHARD_SCHEMA {
            return Err(StoreError::SchemaMismatch {
                path: path.to_string(),
                found: schema,
                expected: SHARD_SCHEMA,
            });
        }
        let record_words = word(6);
        if record_words != RECORD_WORDS as u64 {
            return Err(StoreError::RecordWidthMismatch {
                path: path.to_string(),
                found: record_words,
                expected: RECORD_WORDS as u64,
            });
        }
        let record_count = word(5);
        let expected_len = (record_count as usize)
            .checked_mul(RECORD_WORDS)
            .and_then(|record_total| record_total.checked_add(HEADER_WORDS + 1))
            .and_then(|words| words.checked_mul(8))
            .and_then(|payload| payload.checked_add(MAGIC.len()))
            .ok_or(StoreError::Truncated {
                path: path.to_string(),
                expected: usize::MAX,
                found: bytes.len(),
            })?;
        if bytes.len() != expected_len {
            return Err(StoreError::Truncated {
                path: path.to_string(),
                expected: expected_len,
                found: bytes.len(),
            });
        }
        let body_len = bytes.len() - 8;
        let stored_checksum = u64::from_le_bytes(bytes[body_len..].try_into().expect("8-byte slice"));
        if fnv1a(&bytes[..body_len]) != stored_checksum {
            return Err(StoreError::ChecksumMismatch { path: path.to_string() });
        }
        let fingerprint = word(1);
        if let Some(expected) = expected_fingerprint {
            if fingerprint != expected {
                return Err(StoreError::FingerprintMismatch { found: fingerprint, expected });
            }
        }
        let mut records = Vec::with_capacity(record_count as usize);
        let mut offset = MAGIC.len() + HEADER_WORDS * 8;
        for _ in 0..record_count {
            let mut words = [0u64; RECORD_WORDS];
            for word in words.iter_mut() {
                *word = u64::from_le_bytes(bytes[offset..offset + 8].try_into().expect("8-byte slice"));
                offset += 8;
            }
            records.push(ShardRecord::from_words(&words));
        }
        Ok(ShardFile { fingerprint, chunk_index: word(2), start: word(3), len: word(4), records })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record(salt: u64) -> ShardRecord {
        let accumulator_words: [u64; AccumulatorState::WORDS] =
            std::array::from_fn(|index| salt * 100 + index as u64);
        let cost_words: [u64; CostTotals::WORDS] = std::array::from_fn(|index| salt * 1_000 + index as u64);
        ShardRecord {
            mitigation_bits: salt % 16,
            profile_index: salt % 3,
            accumulator: AccumulatorState::from_words(&accumulator_words),
            requests: salt * 7,
            planned_requests: salt * 8,
            cost: CostTotals::from_words(&cost_words),
        }
    }

    fn sample_shard() -> ShardFile {
        ShardFile {
            fingerprint: 0xfeed_beef_dead_cafe,
            chunk_index: 3,
            start: 3_000,
            len: 1_000,
            records: (1..=6).map(sample_record).collect(),
        }
    }

    #[test]
    fn record_words_round_trip_every_field() {
        let record = sample_record(5);
        assert_eq!(ShardRecord::from_words(&record.to_words()), record);
        // Distinct value per word position: swaps and drops cannot pass.
        let words: [u64; RECORD_WORDS] = std::array::from_fn(|index| 90_000 + index as u64);
        assert_eq!(ShardRecord::from_words(&words).to_words(), words);
    }

    #[test]
    fn encode_decode_round_trips_and_is_deterministic() {
        let shard = sample_shard();
        let bytes = shard.encode();
        assert_eq!(bytes, shard.encode(), "encoding must be deterministic");
        let decoded = ShardFile::decode("test.shard", &bytes, Some(shard.fingerprint)).unwrap();
        assert_eq!(decoded, shard);
    }

    #[test]
    fn truncated_bytes_are_refused() {
        let bytes = sample_shard().encode();
        let error = ShardFile::decode("t", &bytes[..bytes.len() - 3], None).unwrap_err();
        assert!(matches!(error, StoreError::Truncated { .. }), "{error:?}");
        let error = ShardFile::decode("t", &bytes[..10], None).unwrap_err();
        assert!(matches!(error, StoreError::Truncated { .. }), "{error:?}");
    }

    #[test]
    fn flipped_bytes_fail_the_checksum() {
        let mut bytes = sample_shard().encode();
        let middle = bytes.len() / 2;
        bytes[middle] ^= 0x40;
        let error = ShardFile::decode("t", &bytes, None).unwrap_err();
        assert_eq!(error, StoreError::ChecksumMismatch { path: "t".to_string() });
    }

    #[test]
    fn wrong_magic_and_schema_are_refused() {
        let mut bytes = sample_shard().encode();
        bytes[0] = b'X';
        assert!(matches!(ShardFile::decode("t", &bytes, None).unwrap_err(), StoreError::BadMagic { .. }));

        let mut bytes = sample_shard().encode();
        // Bump the schema word and re-seal the checksum so only the schema
        // disagrees.
        bytes[8..16].copy_from_slice(&(SHARD_SCHEMA + 1).to_le_bytes());
        let body = bytes.len() - 8;
        let checksum = fnv1a(&bytes[..body]);
        bytes[body..].copy_from_slice(&checksum.to_le_bytes());
        let error = ShardFile::decode("t", &bytes, None).unwrap_err();
        assert_eq!(
            error,
            StoreError::SchemaMismatch {
                path: "t".to_string(),
                found: SHARD_SCHEMA + 1,
                expected: SHARD_SCHEMA
            }
        );
    }

    #[test]
    fn foreign_fingerprint_is_refused_when_expected() {
        let shard = sample_shard();
        let bytes = shard.encode();
        assert!(ShardFile::decode("t", &bytes, None).is_ok());
        let error = ShardFile::decode("t", &bytes, Some(1)).unwrap_err();
        assert_eq!(error, StoreError::FingerprintMismatch { found: shard.fingerprint, expected: 1 });
    }

    #[test]
    fn record_width_from_another_build_is_refused() {
        let mut bytes = sample_shard().encode();
        let width_offset = MAGIC.len() + 6 * 8;
        bytes[width_offset..width_offset + 8].copy_from_slice(&(RECORD_WORDS as u64 + 1).to_le_bytes());
        let body = bytes.len() - 8;
        let checksum = fnv1a(&bytes[..body]);
        bytes[body..].copy_from_slice(&checksum.to_le_bytes());
        let error = ShardFile::decode("t", &bytes, None).unwrap_err();
        assert!(matches!(error, StoreError::RecordWidthMismatch { .. }), "{error:?}");
    }

    #[test]
    fn empty_shard_encodes_and_decodes() {
        let shard = ShardFile { fingerprint: 9, chunk_index: 0, start: 0, len: 0, records: Vec::new() };
        let decoded = ShardFile::decode("t", &shard.encode(), Some(9)).unwrap();
        assert_eq!(decoded, shard);
    }
}
