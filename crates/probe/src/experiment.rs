//! The probe loop and its overlap matrix (Figure 3).

use crate::pairs::{default_pairs, DomainPair};
use crate::resolvers::{resolver_panel, ResolverDescription};
use netsim_dns::{Authority, RecursiveResolver};
use netsim_types::{Duration, Instant};
use serde::{Deserialize, Serialize};

/// Probe parameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProbeConfig {
    /// How often every resolver is queried (the paper: every 6 minutes).
    pub interval: Duration,
    /// Total probe duration (the paper: ~8 days).
    pub duration: Duration,
    /// The pairs to probe.
    pub pairs: Vec<DomainPair>,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            interval: Duration::from_mins(6),
            duration: Duration::from_days(8),
            pairs: default_pairs(),
        }
    }
}

impl ProbeConfig {
    /// A shorter probe (handy for tests and quick runs).
    pub fn quick() -> Self {
        ProbeConfig {
            interval: Duration::from_mins(6),
            duration: Duration::from_hours(12),
            pairs: default_pairs(),
        }
    }

    /// Number of time slots the configuration produces.
    pub fn slot_count(&self) -> usize {
        (self.duration.as_millis() / self.interval.as_millis().max(1)) as usize
    }
}

/// The Figure 3 data: for every pair and time slot, the number of resolvers
/// whose answers for the two domains overlapped.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OverlapMatrix {
    /// The probed pairs, row order of the matrix.
    pub pairs: Vec<DomainPair>,
    /// Slot start times.
    pub timestamps: Vec<Instant>,
    /// Number of resolvers on the panel.
    pub resolver_count: usize,
    /// `counts[pair][slot]` = resolvers with overlapping answers.
    pub counts: Vec<Vec<u32>>,
}

impl OverlapMatrix {
    /// The overlap counts for one pair.
    pub fn row(&self, pair_index: usize) -> &[u32] {
        &self.counts[pair_index]
    }

    /// Fraction of slots in which at least one resolver observed overlapping
    /// answers for the pair.
    pub fn any_overlap_share(&self, pair_index: usize) -> f64 {
        let row = self.row(pair_index);
        if row.is_empty() {
            return 0.0;
        }
        row.iter().filter(|&&count| count > 0).count() as f64 / row.len() as f64
    }

    /// Mean overlap count (over slots) for the pair.
    pub fn mean_overlap(&self, pair_index: usize) -> f64 {
        let row = self.row(pair_index);
        if row.is_empty() {
            return 0.0;
        }
        row.iter().map(|&c| c as f64).sum::<f64>() / row.len() as f64
    }
}

/// The probe itself.
#[derive(Clone, Debug)]
pub struct ProbeExperiment {
    config: ProbeConfig,
    panel: Vec<ResolverDescription>,
}

impl ProbeExperiment {
    /// A probe with the default 14-resolver panel.
    pub fn new(config: ProbeConfig) -> Self {
        ProbeExperiment { config, panel: resolver_panel() }
    }

    /// The configuration.
    pub fn config(&self) -> &ProbeConfig {
        &self.config
    }

    /// The resolver panel (Table 11).
    pub fn panel(&self) -> &[ResolverDescription] {
        &self.panel
    }

    /// Run the probe against an authority (typically
    /// `WebEnvironment::authority` from a generated population).
    pub fn run(&self, authority: &Authority) -> OverlapMatrix {
        let mut resolvers: Vec<RecursiveResolver> = self
            .panel
            .iter()
            .enumerate()
            .map(|(index, description)| RecursiveResolver::new(description.to_config(index)))
            .collect();

        let slots = self.config.slot_count();
        let mut timestamps = Vec::with_capacity(slots);
        let mut counts = vec![Vec::with_capacity(slots); self.config.pairs.len()];
        for slot in 0..slots {
            let now = Instant::EPOCH + Duration::from_millis(self.config.interval.as_millis() * slot as u64);
            timestamps.push(now);
            for (pair_index, pair) in self.config.pairs.iter().enumerate() {
                let mut overlapping = 0u32;
                for resolver in resolvers.iter_mut() {
                    // `resolve` hands out a borrow of the resolver's cache;
                    // clone the first answer so the second lookup can run.
                    let origin = resolver.resolve(authority, &pair.origin, now).cloned();
                    let previous = resolver.resolve(authority, &pair.previous, now);
                    if let (Ok(origin), Ok(previous)) = (origin, previous) {
                        if origin.overlaps(previous) {
                            overlapping += 1;
                        }
                    }
                }
                counts[pair_index].push(overlapping);
            }
        }
        OverlapMatrix {
            pairs: self.config.pairs.clone(),
            timestamps,
            resolver_count: self.panel.len(),
            counts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim_web::{PopulationBuilder, PopulationProfile};

    fn authority() -> Authority {
        // The population installs the third-party services, which is all the
        // probe needs; site count barely matters.
        PopulationBuilder::new(PopulationProfile::alexa(), 2, 123).build().authority
    }

    #[test]
    fn probe_produces_a_full_matrix() {
        let config = ProbeConfig {
            interval: Duration::from_mins(6),
            duration: Duration::from_hours(3),
            pairs: default_pairs(),
        };
        let slots = config.slot_count();
        assert_eq!(slots, 30);
        let matrix = ProbeExperiment::new(config).run(&authority());
        assert_eq!(matrix.pairs.len(), 20);
        assert_eq!(matrix.timestamps.len(), slots);
        assert_eq!(matrix.resolver_count, 14);
        for row in &matrix.counts {
            assert_eq!(row.len(), slots);
            assert!(row.iter().all(|&c| c <= 14));
        }
    }

    #[test]
    fn unsynchronized_pairs_overlap_only_sometimes() {
        let config = ProbeConfig {
            interval: Duration::from_mins(30),
            duration: Duration::from_days(2),
            pairs: vec![
                DomainPair::new("www.google-analytics.com", "www.googletagmanager.com"),
                DomainPair::new("www.facebook.com", "connect.facebook.net"),
            ],
        };
        let matrix = ProbeExperiment::new(config).run(&authority());
        for pair_index in 0..matrix.pairs.len() {
            let share = matrix.any_overlap_share(pair_index);
            let mean = matrix.mean_overlap(pair_index);
            // The pools have 8 members and answers are per-resolver hashed,
            // so overlap must be neither absent nor universal.
            assert!(share > 0.0, "pair {pair_index} never overlapped");
            assert!(mean < 14.0 * 0.9, "pair {pair_index} overlapped almost always (mean {mean})");
        }
    }

    #[test]
    fn same_domain_pair_always_overlaps() {
        let config = ProbeConfig {
            interval: Duration::from_mins(6),
            duration: Duration::from_hours(1),
            pairs: vec![DomainPair::new("www.google-analytics.com", "www.google-analytics.com")],
        };
        let matrix = ProbeExperiment::new(config).run(&authority());
        assert!(matrix.row(0).iter().all(|&count| count == 14));
        assert!((matrix.any_overlap_share(0) - 1.0).abs() < 1e-9);
        assert!((matrix.mean_overlap(0) - 14.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_domains_never_overlap() {
        let config = ProbeConfig {
            interval: Duration::from_mins(6),
            duration: Duration::from_hours(1),
            pairs: vec![DomainPair::new("does-not-exist.example", "www.google-analytics.com")],
        };
        let matrix = ProbeExperiment::new(config).run(&authority());
        assert!(matrix.row(0).iter().all(|&count| count == 0));
    }
}
