//! The probed domain pairs.
//!
//! Appendix A.4 probes the 20 most frequent `IP`-cause pairs of Table 12 —
//! each pair being a redundant origin and the previous origin whose
//! connection could have been reused. The default list below mirrors the
//! published pairs, restricted to the domains the simulated third-party
//! catalog serves.

use netsim_types::DomainName;
use serde::{Deserialize, Serialize};

/// One probed pair: the redundant origin and its reusable previous origin.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DomainPair {
    /// The origin whose connections were redundant.
    pub origin: DomainName,
    /// The previous origin whose connection could have been reused.
    pub previous: DomainName,
}

impl DomainPair {
    /// Construct a pair from textual domains.
    pub fn new(origin: &str, previous: &str) -> Self {
        DomainPair { origin: DomainName::literal(origin), previous: DomainName::literal(previous) }
    }

    /// A short label for plots ("origin ← previous").
    pub fn label(&self) -> String {
        format!("{} \u{2190} {}", self.origin, self.previous)
    }
}

/// The default probe list (the Table 12 / Figure 3 pairs present in the
/// simulated catalog).
pub fn default_pairs() -> Vec<DomainPair> {
    vec![
        DomainPair::new("www.google-analytics.com", "www.googletagmanager.com"),
        DomainPair::new("www.facebook.com", "connect.facebook.net"),
        DomainPair::new("googleads.g.doubleclick.net", "pagead2.googlesyndication.com"),
        DomainPair::new("pagead2.googlesyndication.com", "googleads.g.doubleclick.net"),
        DomainPair::new("tpc.googlesyndication.com", "pagead2.googlesyndication.com"),
        DomainPair::new("www.googletagservices.com", "pagead2.googlesyndication.com"),
        DomainPair::new("partner.googleadservices.com", "pagead2.googlesyndication.com"),
        DomainPair::new("stats.g.doubleclick.net", "googleads.g.doubleclick.net"),
        DomainPair::new("fonts.gstatic.com", "www.gstatic.com"),
        DomainPair::new("script.hotjar.com", "static.hotjar.com"),
        DomainPair::new("vars.hotjar.com", "static.hotjar.com"),
        DomainPair::new("in.hotjar.com", "static.hotjar.com"),
        DomainPair::new("fonts.googleapis.com", "ajax.googleapis.com"),
        DomainPair::new("stats.wp.com", "c0.wp.com"),
        DomainPair::new("securepubads.g.doubleclick.net", "www.googletagservices.com"),
        DomainPair::new("ajax.googleapis.com", "fonts.googleapis.com"),
        DomainPair::new("maps.googleapis.com", "fonts.googleapis.com"),
        DomainPair::new("www.googleadservices.com", "stats.g.doubleclick.net"),
        DomainPair::new("apis.google.com", "www.gstatic.com"),
        DomainPair::new("i.ytimg.com", "www.youtube.com"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_list_has_twenty_distinct_pairs() {
        let pairs = default_pairs();
        assert_eq!(pairs.len(), 20);
        let unique: std::collections::BTreeSet<_> = pairs.iter().map(|p| (p.origin, p.previous)).collect();
        assert_eq!(unique.len(), pairs.len());
        for pair in &pairs {
            assert_ne!(pair.origin, pair.previous);
        }
    }

    #[test]
    fn labels_are_readable() {
        let pair = DomainPair::new("www.google-analytics.com", "www.googletagmanager.com");
        assert!(pair.label().contains("google-analytics"));
        assert!(pair.label().contains('\u{2190}'));
    }
}
