//! # connreuse-probe
//!
//! The DNS load-balancing probe of Appendix A.4.
//!
//! The paper checks the temporal and spatial dependency of DNS resolution for
//! its 20 most frequent `IP`-cause domains: every six minutes, over several
//! days, each of 14 public resolvers (Table 11) resolves both domains of a
//! pair (e.g. `www.google-analytics.com` and its reusable previous origin
//! `www.googletagmanager.com`), and the probe counts for how many resolvers
//! the two answers overlap — i.e. for how many vantage points Connection
//! Reuse would have been possible at that moment. Figure 3 plots that count
//! over time.
//!
//! * [`resolvers`] — the 14-resolver panel (Table 11),
//! * [`pairs`] — the probed domain pairs (the Table 12 top pairs, restricted
//!   to the domains the simulated population actually serves),
//! * [`experiment`] — the probe loop and the resulting overlap matrix.

pub mod experiment;
pub mod pairs;
pub mod resolvers;

pub use experiment::{OverlapMatrix, ProbeConfig, ProbeExperiment};
pub use pairs::{default_pairs, DomainPair};
pub use resolvers::{resolver_panel, ResolverDescription};
