//! The resolver panel (Table 11).
//!
//! The paper selects 14 public resolvers spread around the world, checks that
//! they have reverse DNS entries and that none forwards EDNS Client Subnet.
//! The panel below mirrors that table; the addresses are labels only (the
//! simulation routes queries by [`netsim_dns::ResolverId`]).

use netsim_dns::{ResolverConfig, ResolverId, Vantage};
use serde::{Deserialize, Serialize};

/// One row of Table 11.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResolverDescription {
    /// Address (or "internal" for the university resolver).
    pub address: String,
    /// Country the resolver is located in.
    pub country: String,
    /// Operating organisation.
    pub operator: String,
    /// The vantage region used for load-balancing decisions.
    pub vantage: Vantage,
}

impl ResolverDescription {
    fn new(address: &str, country: &str, operator: &str, vantage: Vantage) -> Self {
        ResolverDescription {
            address: address.to_string(),
            country: country.to_string(),
            operator: operator.to_string(),
            vantage,
        }
    }

    /// The resolver configuration for the panel member at `index`.
    pub fn to_config(&self, index: usize) -> ResolverConfig {
        ResolverConfig::new(ResolverId(index as u32 + 1), self.vantage, &self.operator)
    }
}

/// The 14-resolver panel of Table 11.
pub fn resolver_panel() -> Vec<ResolverDescription> {
    vec![
        ResolverDescription::new("internal", "Germany", "RWTH Aachen University", Vantage::Europe),
        ResolverDescription::new("168.126.63.1", "South Korea", "KT Corporation", Vantage::AsiaPacific),
        ResolverDescription::new("172.104.237.57", "Germany", "FreeDNS", Vantage::Europe),
        ResolverDescription::new("172.104.49.100", "Singapore", "FreeDNS", Vantage::AsiaPacific),
        ResolverDescription::new("177.47.128.2", "Brazil", "Ver Tv Comunicações S/A", Vantage::SouthAmerica),
        ResolverDescription::new("178.237.152.146", "Spain", "MAXEN TECHNOLOGIES, S.L.", Vantage::Europe),
        ResolverDescription::new("195.208.5.1", "Russia", "MSK-IX", Vantage::Europe),
        ResolverDescription::new(
            "203.50.2.71",
            "Australia",
            "Telstra Corporation Limited",
            Vantage::AsiaPacific,
        ),
        ResolverDescription::new("210.87.250.59", "Hong Kong", "HKT Limited", Vantage::AsiaPacific),
        ResolverDescription::new("212.89.130.180", "Germany", "Infoserve GmbH", Vantage::Europe),
        ResolverDescription::new("221.119.13.154", "Japan", "Marss Japan Co., Ltd", Vantage::AsiaPacific),
        ResolverDescription::new(
            "8.0.26.0",
            "United Kingdom",
            "Level 3 Communications, Inc.",
            Vantage::Europe,
        ),
        ResolverDescription::new("8.0.6.0", "USA", "Level 3 Communications, Inc.", Vantage::NorthAmerica),
        ResolverDescription::new("80.67.169.12", "France", "French Data Network (FDN)", Vantage::Europe),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_has_fourteen_members_without_ecs() {
        let panel = resolver_panel();
        assert_eq!(panel.len(), 14);
        for (index, description) in panel.iter().enumerate() {
            let config = description.to_config(index);
            assert!(!config.ecs, "panel resolvers must not forward ECS");
            assert_eq!(config.vantage, description.vantage);
        }
    }

    #[test]
    fn panel_ids_are_distinct() {
        let panel = resolver_panel();
        let ids: std::collections::BTreeSet<_> =
            panel.iter().enumerate().map(|(i, d)| d.to_config(i).id).collect();
        assert_eq!(ids.len(), panel.len());
    }

    #[test]
    fn panel_spans_multiple_regions() {
        let panel = resolver_panel();
        let vantages: std::collections::BTreeSet<_> = panel.iter().map(|d| d.vantage).collect();
        assert!(vantages.len() >= 3);
    }
}
