//! Well-known autonomous systems.
//!
//! The names and numbers match the ASes that appear in Table 6 of the paper,
//! so the simulated attribution tables read like the original ones.

use crate::registry::AutonomousSystem;
use serde::{Deserialize, Serialize};

/// Constructors for the ASes named in the paper plus generic hosting ASes for
/// the long tail.
pub mod well_known {
    use super::AutonomousSystem;

    /// GOOGLE (AS15169) — Google's own CDN, hosts analytics/ads/gstatic.
    pub fn google() -> AutonomousSystem {
        AutonomousSystem::new(15169, "GOOGLE")
    }
    /// AMAZON-02 (AS16509) — AWS / CloudFront (hosts e.g. hotjar).
    pub fn amazon_02() -> AutonomousSystem {
        AutonomousSystem::new(16509, "AMAZON-02")
    }
    /// FACEBOOK (AS32934).
    pub fn facebook() -> AutonomousSystem {
        AutonomousSystem::new(32934, "FACEBOOK")
    }
    /// AUTOMATTIC (AS2635) — wp.com services.
    pub fn automattic() -> AutonomousSystem {
        AutonomousSystem::new(2635, "AUTOMATTIC")
    }
    /// CLOUDFLARENET (AS13335).
    pub fn cloudflare() -> AutonomousSystem {
        AutonomousSystem::new(13335, "CLOUDFLARENET")
    }
    /// FASTLY (AS54113).
    pub fn fastly() -> AutonomousSystem {
        AutonomousSystem::new(54113, "FASTLY")
    }
    /// AMAZON-AES (AS14618) — AWS us-east legacy region.
    pub fn amazon_aes() -> AutonomousSystem {
        AutonomousSystem::new(14618, "AMAZON-AES")
    }
    /// EDGECAST (AS15133).
    pub fn edgecast() -> AutonomousSystem {
        AutonomousSystem::new(15133, "EDGECAST")
    }
    /// AKAMAI-ASN1 (AS20940).
    pub fn akamai_asn1() -> AutonomousSystem {
        AutonomousSystem::new(20940, "AKAMAI-ASN1")
    }
    /// AKAMAI-AS (AS16625).
    pub fn akamai_as() -> AutonomousSystem {
        AutonomousSystem::new(16625, "AKAMAI-AS")
    }
    /// A generic shared-hosting AS for small independent sites; `index`
    /// spreads the long tail over several hosters.
    pub fn generic_hosting(index: u32) -> AutonomousSystem {
        AutonomousSystem::new(64_512 + index, &format!("HOSTING-{index}"))
    }
}

/// The catalog used by the population generator when it needs "one of the big
/// CDNs/clouds" versus "a small hoster".
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AsCatalog {
    /// Large content/CDN providers, weighted roughly by their share of
    /// third-party hosting.
    pub major: Vec<(AutonomousSystem, f64)>,
    /// Number of generic small hosting ASes available for the long tail.
    pub generic_hosting_pool: u32,
}

impl Default for AsCatalog {
    fn default() -> Self {
        AsCatalog {
            major: vec![
                (well_known::google(), 0.30),
                (well_known::amazon_02(), 0.18),
                (well_known::cloudflare(), 0.16),
                (well_known::facebook(), 0.08),
                (well_known::fastly(), 0.07),
                (well_known::amazon_aes(), 0.06),
                (well_known::akamai_asn1(), 0.05),
                (well_known::akamai_as(), 0.04),
                (well_known::edgecast(), 0.03),
                (well_known::automattic(), 0.03),
            ],
            generic_hosting_pool: 64,
        }
    }
}

impl AsCatalog {
    /// Sampling weights aligned with [`AsCatalog::major`].
    pub fn major_weights(&self) -> Vec<f64> {
        self.major.iter().map(|(_, w)| *w).collect()
    }

    /// The major AS at `index`.
    pub fn major_at(&self, index: usize) -> &AutonomousSystem {
        &self.major[index].0
    }

    /// The generic hosting AS for a hash/index value.
    pub fn generic_for(&self, index: u32) -> AutonomousSystem {
        well_known::generic_hosting(index % self.generic_hosting_pool.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_match_paper_table6() {
        let names: Vec<String> = AsCatalog::default().major.iter().map(|(a, _)| a.name.clone()).collect();
        for expected in ["GOOGLE", "AMAZON-02", "FACEBOOK", "CLOUDFLARENET", "FASTLY", "AUTOMATTIC"] {
            assert!(names.contains(&expected.to_string()), "missing {expected}");
        }
    }

    #[test]
    fn generic_hosting_wraps_around_pool() {
        let catalog = AsCatalog::default();
        assert_eq!(catalog.generic_for(0), catalog.generic_for(64));
        assert_ne!(catalog.generic_for(0), catalog.generic_for(1));
    }

    #[test]
    fn weights_are_positive() {
        let catalog = AsCatalog::default();
        assert_eq!(catalog.major_weights().len(), catalog.major.len());
        assert!(catalog.major_weights().iter().all(|w| *w > 0.0));
        assert_eq!(catalog.major_at(0).name, "GOOGLE");
    }
}
