//! Prefix allocation and IP-to-AS lookup.

use netsim_types::{IpAddr, Prefix};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// An autonomous-system number.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Asn(pub u32);

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl fmt::Debug for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// An autonomous system: number plus the short name used in report tables.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AutonomousSystem {
    /// AS number.
    pub asn: Asn,
    /// Short AS name (e.g. `GOOGLE`, `AMAZON-02`).
    pub name: String,
}

impl AutonomousSystem {
    /// Construct from number and name.
    pub fn new(asn: u32, name: &str) -> Self {
        AutonomousSystem { asn: Asn(asn), name: name.to_string() }
    }
}

impl fmt::Display for AutonomousSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.asn)
    }
}

impl fmt::Debug for AutonomousSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// The registry: which prefixes belong to which AS, plus an allocator that
/// hands out fresh /24s to operators as the population generator builds the
/// hosting landscape.
///
/// A registry can be *layered* over a shared immutable base
/// ([`AsRegistry::with_base`]): allocation continues where the base stopped
/// (so prefixes stay distinct and identical to a monolithic build) and
/// lookups consult both layers.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct AsRegistry {
    /// Announced prefixes, keyed by base address (all /24 or shorter).
    announcements: BTreeMap<Prefix, AutonomousSystem>,
    /// Next /16 block index used by [`AsRegistry::allocate_slash24`].
    next_block: u32,
    /// Shared read-only announcements consulted on lookup misses.
    base: Option<std::sync::Arc<AsRegistry>>,
}

impl AsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        AsRegistry::default()
    }

    /// An empty registry layered over a shared base: the /24 allocator
    /// continues at the base's next block, lookups fall back to the base.
    pub fn with_base(base: std::sync::Arc<AsRegistry>) -> Self {
        AsRegistry { announcements: BTreeMap::new(), next_block: base.next_block, base: Some(base) }
    }

    /// Announce `prefix` as belonging to `system`.
    pub fn announce(&mut self, prefix: Prefix, system: AutonomousSystem) {
        self.announcements.insert(prefix, system);
    }

    /// Allocate a fresh, previously unused /24 for `system` and announce it.
    ///
    /// Allocation walks the RFC 1918-free space starting at `20.0.0.0`,
    /// handing out consecutive /24s; the absolute values are meaningless,
    /// only distinctness matters.
    pub fn allocate_slash24(&mut self, system: AutonomousSystem) -> Prefix {
        let block = self.next_block;
        self.next_block += 1;
        // 20.x.y.0/24 with x.y derived from the counter.
        let base =
            IpAddr::new(20, ((block >> 8) & 0xFF) as u8, (block & 0xFF) as u8, 0).offset((block >> 16) << 24);
        let prefix = Prefix::new(base, 24);
        self.announce(prefix, system);
        prefix
    }

    /// Longest-prefix match: the AS announcing the most specific prefix
    /// containing `ip`, across this layer and any shared base.
    pub fn lookup(&self, ip: IpAddr) -> Option<&AutonomousSystem> {
        self.best_match(ip).map(|(_, system)| system)
    }

    /// The most specific matching announcement in this layer or its base
    /// (comparing prefix lengths across layers, like a monolithic registry).
    fn best_match(&self, ip: IpAddr) -> Option<(&Prefix, &AutonomousSystem)> {
        let local = self
            .announcements
            .iter()
            .filter(|(prefix, _)| prefix.contains(ip))
            .max_by_key(|(prefix, _)| prefix.len());
        let base = self.base.as_ref().and_then(|base| base.best_match(ip));
        match (local, base) {
            (Some(local), Some(base)) => Some(if local.0.len() >= base.0.len() { local } else { base }),
            (hit, None) | (None, hit) => hit,
        }
    }

    /// Number of announced prefixes.
    pub fn announcement_count(&self) -> usize {
        self.announcements.len()
    }

    /// All announcements.
    pub fn announcements(&self) -> impl Iterator<Item = (&Prefix, &AutonomousSystem)> {
        self.announcements.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn announce_and_lookup() {
        let mut registry = AsRegistry::new();
        registry.announce("142.250.0.0/15".parse().unwrap(), AutonomousSystem::new(15169, "GOOGLE"));
        registry.announce("142.250.74.0/24".parse().unwrap(), AutonomousSystem::new(396982, "GOOGLE-CLOUD"));
        // Longest prefix wins.
        let hit = registry.lookup(IpAddr::new(142, 250, 74, 14)).unwrap();
        assert_eq!(hit.name, "GOOGLE-CLOUD");
        let broader = registry.lookup(IpAddr::new(142, 251, 0, 1)).unwrap();
        assert_eq!(broader.name, "GOOGLE");
        assert!(registry.lookup(IpAddr::new(8, 8, 8, 8)).is_none());
    }

    #[test]
    fn allocation_produces_distinct_prefixes() {
        let mut registry = AsRegistry::new();
        let a = registry.allocate_slash24(AutonomousSystem::new(1, "A"));
        let b = registry.allocate_slash24(AutonomousSystem::new(2, "B"));
        assert_ne!(a, b);
        assert_eq!(registry.announcement_count(), 2);
        assert_eq!(registry.lookup(a.host(5)).unwrap().name, "A");
        assert_eq!(registry.lookup(b.host(200)).unwrap().name, "B");
    }

    #[test]
    fn many_allocations_stay_distinct() {
        let mut registry = AsRegistry::new();
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..1000 {
            let prefix = registry.allocate_slash24(AutonomousSystem::new(i, "X"));
            assert!(seen.insert(prefix), "duplicate prefix {prefix}");
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(Asn(15169).to_string(), "AS15169");
        assert_eq!(AutonomousSystem::new(32934, "FACEBOOK").to_string(), "FACEBOOK (AS32934)");
    }
}
