//! # netsim-asdb
//!
//! A small autonomous-system / address-registry substrate.
//!
//! Table 6 of the paper attributes `IP`-cause redundant connections to the
//! autonomous systems hosting the involved origins (GOOGLE, AMAZON-02,
//! FACEBOOK, …). The real study maps destination IPs to ASes with a routing
//! table snapshot; the simulation instead *allocates* addresses from
//! AS-labelled prefixes in the first place and keeps the mapping here, so the
//! attribution code can do the same IP → AS lookup the paper does.
//!
//! * [`registry`] — prefix allocation and longest-prefix IP → AS lookup,
//! * [`catalog`] — the well-known ASes of Table 6 plus generic hosting/cloud
//!   ASes used for the long tail of small sites.

pub mod catalog;
pub mod registry;

pub use catalog::{well_known, AsCatalog};
pub use registry::{AsRegistry, Asn, AutonomousSystem};
