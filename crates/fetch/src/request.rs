//! Fetch requests: destinations, modes and credentials modes.
//!
//! The Fetch Standard assigns each kind of resource a *destination*, a
//! *request mode* and a *credentials mode*; HTML fills in defaults depending
//! on the element that triggered the load (e.g. `@font-face` fonts must use
//! CORS with "same-origin" credentials, a plain `<img>` uses `no-cors` with
//! "include"). Those defaults decide whether a request carries credentials
//! cross-origin, which in turn decides its connection-pool partition.

use netsim_types::{DomainName, Origin};
use serde::{Deserialize, Serialize};

/// What kind of resource the request is for (Fetch "destination").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum RequestDestination {
    /// The top-level HTML document (navigation).
    Document,
    /// A classic or module script.
    Script,
    /// A stylesheet.
    Style,
    /// An image (including tracking pixels).
    Image,
    /// A web font loaded via `@font-face`.
    Font,
    /// A media resource (audio/video).
    Media,
    /// An `XMLHttpRequest` / `fetch()` call.
    Xhr,
    /// A nested browsing context (`<iframe>`).
    Iframe,
    /// A beacon / ping (analytics submission).
    Beacon,
    /// Anything else.
    Other,
}

/// The Fetch request mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum RequestMode {
    /// Only same-origin requests allowed.
    SameOrigin,
    /// Cross-origin allowed without CORS; response is opaque cross-origin.
    NoCors,
    /// Cross-origin with CORS checks.
    Cors,
    /// Top-level navigation.
    Navigate,
}

/// The Fetch credentials mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum CredentialsMode {
    /// Never send credentials.
    Omit,
    /// Send credentials only for same-origin requests.
    SameOrigin,
    /// Always send credentials.
    Include,
}

impl RequestDestination {
    /// The default (mode, credentials mode) HTML assigns to this destination
    /// when the author did not opt into CORS (`crossorigin` absent).
    pub fn default_parameters(self) -> (RequestMode, CredentialsMode) {
        match self {
            RequestDestination::Document | RequestDestination::Iframe => {
                (RequestMode::Navigate, CredentialsMode::Include)
            }
            // Fonts must be requested with CORS and "same-origin" credentials
            // (CSS Fonts §4.9 via Fetch) — the canonical CRED trigger.
            RequestDestination::Font => (RequestMode::Cors, CredentialsMode::SameOrigin),
            // Beacons / analytics submissions ride fetch(keepalive) or
            // sendBeacon, which default to CORS + include.
            RequestDestination::Beacon | RequestDestination::Xhr => {
                (RequestMode::Cors, CredentialsMode::SameOrigin)
            }
            // Classic sub-resources without `crossorigin` are no-cors and
            // include credentials.
            RequestDestination::Script
            | RequestDestination::Style
            | RequestDestination::Image
            | RequestDestination::Media
            | RequestDestination::Other => (RequestMode::NoCors, CredentialsMode::Include),
        }
    }

    /// The parameters when the author adds `crossorigin="anonymous"`.
    pub fn anonymous_parameters(self) -> (RequestMode, CredentialsMode) {
        (RequestMode::Cors, CredentialsMode::SameOrigin)
    }

    /// The parameters when the author adds `crossorigin="use-credentials"`.
    pub fn use_credentials_parameters(self) -> (RequestMode, CredentialsMode) {
        (RequestMode::Cors, CredentialsMode::Include)
    }
}

/// A fetch as the browser model issues it: the target URL's origin and path,
/// the initiating document's origin, and the resolved Fetch parameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FetchRequest {
    /// The origin of the requested URL.
    pub url_origin: Origin,
    /// Path component of the requested URL.
    pub path: String,
    /// Origin of the document (or worker) that initiated the fetch.
    pub initiator: Origin,
    /// Resource kind.
    pub destination: RequestDestination,
    /// Request mode.
    pub mode: RequestMode,
    /// Credentials mode.
    pub credentials: CredentialsMode,
}

impl FetchRequest {
    /// A request with the destination's default parameters.
    pub fn with_defaults(
        url_origin: Origin,
        path: &str,
        initiator: Origin,
        destination: RequestDestination,
    ) -> Self {
        let (mode, credentials) = destination.default_parameters();
        FetchRequest { url_origin, path: path.to_string(), initiator, destination, mode, credentials }
    }

    /// A navigation request for a landing page.
    pub fn navigation(host: DomainName) -> Self {
        let origin = Origin::https(host);
        FetchRequest {
            url_origin: origin,
            path: "/".to_string(),
            initiator: origin,
            destination: RequestDestination::Document,
            mode: RequestMode::Navigate,
            credentials: CredentialsMode::Include,
        }
    }

    /// Override the mode/credentials with the `crossorigin="anonymous"`
    /// parameters.
    pub fn anonymous(mut self) -> Self {
        let (mode, credentials) = self.destination.anonymous_parameters();
        self.mode = mode;
        self.credentials = credentials;
        self
    }

    /// `true` if the requested URL is same-origin with the initiator.
    pub fn is_same_origin(&self) -> bool {
        self.url_origin == self.initiator
    }

    /// The requested host.
    pub fn host(&self) -> &DomainName {
        &self.url_origin.host
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(host: &str) -> Origin {
        Origin::https(DomainName::literal(host))
    }

    #[test]
    fn defaults_per_destination() {
        assert_eq!(
            RequestDestination::Image.default_parameters(),
            (RequestMode::NoCors, CredentialsMode::Include)
        );
        assert_eq!(
            RequestDestination::Font.default_parameters(),
            (RequestMode::Cors, CredentialsMode::SameOrigin)
        );
        assert_eq!(
            RequestDestination::Document.default_parameters(),
            (RequestMode::Navigate, CredentialsMode::Include)
        );
        assert_eq!(
            RequestDestination::Xhr.default_parameters(),
            (RequestMode::Cors, CredentialsMode::SameOrigin)
        );
    }

    #[test]
    fn crossorigin_attribute_switches_to_cors() {
        assert_eq!(
            RequestDestination::Script.anonymous_parameters(),
            (RequestMode::Cors, CredentialsMode::SameOrigin)
        );
        assert_eq!(
            RequestDestination::Script.use_credentials_parameters(),
            (RequestMode::Cors, CredentialsMode::Include)
        );
    }

    #[test]
    fn request_builders() {
        let nav = FetchRequest::navigation(DomainName::literal("example.com"));
        assert!(nav.is_same_origin());
        assert_eq!(nav.credentials, CredentialsMode::Include);

        let img = FetchRequest::with_defaults(
            o("cdn.example.com"),
            "/logo.png",
            o("example.com"),
            RequestDestination::Image,
        );
        assert!(!img.is_same_origin());
        assert_eq!(img.mode, RequestMode::NoCors);
        assert_eq!(img.host().as_str(), "cdn.example.com");

        let anon_script = FetchRequest::with_defaults(
            o("static.example.com"),
            "/app.js",
            o("example.com"),
            RequestDestination::Script,
        )
        .anonymous();
        assert_eq!(anon_script.mode, RequestMode::Cors);
        assert_eq!(anon_script.credentials, CredentialsMode::SameOrigin);
    }
}
