//! A minimal CORS check.
//!
//! Third-party services that expect CORS requests (fonts, analytics APIs)
//! answer with `Access-Control-Allow-Origin`. The browser model uses this
//! check to decide whether a CORS-mode response is delivered to the page;
//! failed checks do not change connection accounting (the connection was
//! already opened) but are recorded in the HAR output.

use netsim_types::Origin;
use serde::{Deserialize, Serialize};

/// The server side: what a resource announces in
/// `Access-Control-Allow-Origin` (and whether it allows credentials).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CorsPolicy {
    /// No CORS headers at all — cross-origin CORS requests fail.
    None,
    /// `Access-Control-Allow-Origin: *` (credentials never allowed).
    AllowAny,
    /// Reflects the request origin; optionally allows credentials.
    AllowOrigin {
        /// Value of `Access-Control-Allow-Credentials`.
        allow_credentials: bool,
    },
}

/// The outcome of the CORS check.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CorsCheck {
    /// The response may be shared with the requesting origin.
    Allowed,
    /// The response is blocked.
    Blocked,
}

impl CorsPolicy {
    /// Run the CORS check for a request from `requester` that did or did not
    /// include credentials.
    pub fn check(&self, requester: &Origin, with_credentials: bool) -> CorsCheck {
        let _ = requester; // the reflected-origin policy allows every origin
        match self {
            CorsPolicy::None => CorsCheck::Blocked,
            CorsPolicy::AllowAny => {
                if with_credentials {
                    // `*` is invalid when credentials are included.
                    CorsCheck::Blocked
                } else {
                    CorsCheck::Allowed
                }
            }
            CorsPolicy::AllowOrigin { allow_credentials } => {
                if with_credentials && !allow_credentials {
                    CorsCheck::Blocked
                } else {
                    CorsCheck::Allowed
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim_types::DomainName;

    fn origin() -> Origin {
        Origin::https(DomainName::literal("example.com"))
    }

    #[test]
    fn no_policy_blocks() {
        assert_eq!(CorsPolicy::None.check(&origin(), false), CorsCheck::Blocked);
    }

    #[test]
    fn wildcard_allows_only_anonymous() {
        assert_eq!(CorsPolicy::AllowAny.check(&origin(), false), CorsCheck::Allowed);
        assert_eq!(CorsPolicy::AllowAny.check(&origin(), true), CorsCheck::Blocked);
    }

    #[test]
    fn reflected_origin_respects_credentials_flag() {
        let strict = CorsPolicy::AllowOrigin { allow_credentials: false };
        assert_eq!(strict.check(&origin(), true), CorsCheck::Blocked);
        assert_eq!(strict.check(&origin(), false), CorsCheck::Allowed);
        let relaxed = CorsPolicy::AllowOrigin { allow_credentials: true };
        assert_eq!(relaxed.check(&origin(), true), CorsCheck::Allowed);
    }
}
