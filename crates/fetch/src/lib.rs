//! # netsim-fetch
//!
//! A model of the parts of the WHATWG Fetch Standard that govern connection
//! reuse in Chromium.
//!
//! The paper's `CRED` cause is entirely a product of this standard: even when
//! RFC 7540 would allow a request to ride an existing connection (same IP,
//! SAN-covered domain), Fetch §2.5 / §4.6 / §4.7 require the browser to keep
//! **credentialed and credential-less requests on separate connections** so
//! that an anonymous request cannot be linked to a cookie-bearing one. The
//! classic trigger is a cross-origin font or `crossorigin=anonymous` script:
//! its credentials mode resolves to "omit credentials", which lands it in a
//! different connection-pool partition (Chromium's `privacy_mode`) than the
//! page's own credentialed requests — and a second connection to the same
//! server is opened.
//!
//! * [`request`] — request destinations, modes and credentials modes with the
//!   defaults HTML assigns to each resource kind,
//! * [`credentials`] — the credentials-inclusion decision and the resulting
//!   pool partition key,
//! * [`tainting`] — response tainting (basic / cors / opaque),
//! * [`cors`] — a minimal CORS check used by the browser model when a
//!   cross-origin resource requires it.

// The zero-allocation visit fast path made these hot paths clone-free;
// keep them that way.
#![deny(clippy::redundant_clone)]
#![deny(clippy::clone_on_copy)]

pub mod cors;
pub mod credentials;
pub mod request;
pub mod tainting;

pub use cors::{CorsCheck, CorsPolicy};
pub use credentials::{includes_credentials, partition_for, partition_for_planned, CredentialsPartition};
pub use request::{CredentialsMode, FetchRequest, RequestDestination, RequestMode};
pub use tainting::ResponseTainting;
