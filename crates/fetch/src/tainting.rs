//! Response tainting (Fetch §3.6 / §4.1).
//!
//! Tainting does not itself open connections, but it is part of the request
//! bookkeeping the paper references ("depending, e.g., on a request's
//! tainting type") and it feeds the browser's decision whether a cross-origin
//! response may be read by scripts. The simulation records it per request so
//! HAR output carries the same vocabulary real tooling shows.

use crate::request::{FetchRequest, RequestMode};
use serde::{Deserialize, Serialize};

/// The three tainting outcomes of the Fetch main algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum ResponseTainting {
    /// Same-origin (or navigation): the response is fully readable.
    Basic,
    /// Cross-origin with a successful CORS check: readable.
    Cors,
    /// Cross-origin without CORS (`no-cors`): the response is opaque.
    Opaque,
}

impl ResponseTainting {
    /// The tainting a request acquires, assuming any required CORS check
    /// succeeds.
    pub fn for_request(request: &FetchRequest) -> ResponseTainting {
        if request.is_same_origin() {
            return ResponseTainting::Basic;
        }
        match request.mode {
            RequestMode::Navigate | RequestMode::SameOrigin => ResponseTainting::Basic,
            RequestMode::Cors => ResponseTainting::Cors,
            RequestMode::NoCors => ResponseTainting::Opaque,
        }
    }

    /// `true` if response headers and body are visible to the initiator.
    pub fn is_readable(self) -> bool {
        self != ResponseTainting::Opaque
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestDestination;
    use netsim_types::{DomainName, Origin};

    fn o(host: &str) -> Origin {
        Origin::https(DomainName::literal(host))
    }

    #[test]
    fn same_origin_is_basic() {
        let req = FetchRequest::with_defaults(
            o("example.com"),
            "/a.js",
            o("example.com"),
            RequestDestination::Script,
        );
        assert_eq!(ResponseTainting::for_request(&req), ResponseTainting::Basic);
        assert!(ResponseTainting::Basic.is_readable());
    }

    #[test]
    fn cross_origin_nocors_is_opaque() {
        let req = FetchRequest::with_defaults(
            o("cdn.example.net"),
            "/a.js",
            o("example.com"),
            RequestDestination::Script,
        );
        assert_eq!(ResponseTainting::for_request(&req), ResponseTainting::Opaque);
        assert!(!ResponseTainting::Opaque.is_readable());
    }

    #[test]
    fn cross_origin_cors_is_cors() {
        let req = FetchRequest::with_defaults(
            o("fonts.gstatic.com"),
            "/font.woff2",
            o("example.com"),
            RequestDestination::Font,
        );
        assert_eq!(ResponseTainting::for_request(&req), ResponseTainting::Cors);
        assert!(ResponseTainting::Cors.is_readable());
    }

    #[test]
    fn navigation_is_basic_even_cross_origin() {
        let mut nav = FetchRequest::navigation(DomainName::literal("example.com"));
        nav.url_origin = o("other.example.org");
        assert_eq!(ResponseTainting::for_request(&nav), ResponseTainting::Basic);
    }
}
