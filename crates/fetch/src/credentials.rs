//! The credentials-inclusion decision and connection-pool partitioning.
//!
//! Fetch §4.6/§4.7 sends credentials (cookies, client certificates, HTTP
//! auth) with a request when its credentials mode is `include`, or when it is
//! `same-origin` and the request is same-origin with its initiator. Chromium
//! then keys its HTTP/2 session pool on the *privacy mode* derived from that
//! decision: sessions that carried credentials are never shared with
//! credential-less requests and vice versa, "otherwise the existing
//! connection would be tainted with identifying information" (paper §3,
//! cause `CRED`).

use crate::request::{CredentialsMode, FetchRequest};
use serde::{Deserialize, Serialize};

/// The two connection-pool partitions Chromium derives from the credentials
/// decision (`privacy_mode` in `//net`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CredentialsPartition {
    /// Requests that include credentials.
    Credentialed,
    /// Requests that must not be linked to credentials ("privacy mode
    /// enabled" in Chromium's terms).
    Anonymous,
}

impl CredentialsPartition {
    /// `true` for the credentialed partition.
    pub fn is_credentialed(self) -> bool {
        self == CredentialsPartition::Credentialed
    }
}

/// Whether a request includes credentials per Fetch §4.6 step 8 / §2.5.
pub fn includes_credentials(request: &FetchRequest) -> bool {
    match request.credentials {
        CredentialsMode::Include => true,
        CredentialsMode::Omit => false,
        CredentialsMode::SameOrigin => request.is_same_origin(),
    }
}

/// The pool partition a request lands in — the key the browser loader uses
/// for its HTTP/2 session pool.
///
/// The [`Mitigation::CredentialPooling`] deployment does *not* change this
/// key: requests still land in their Fetch-§4.6 partition (credentials are
/// still sent or withheld accordingly), and the collapse happens inside the
/// RFC 7540 reuse check instead (`ReusePolicy::follow_fetch_credentials`,
/// set by `ReusePolicy::with_mitigations`) — exactly like the paper's
/// patched Chromium, which ignores privacy mode when matching sessions
/// rather than mislabelling them.
///
/// [`Mitigation::CredentialPooling`]: netsim_types::Mitigation::CredentialPooling
pub fn partition_for(request: &FetchRequest) -> CredentialsPartition {
    if includes_credentials(request) {
        CredentialsPartition::Credentialed
    } else {
        CredentialsPartition::Anonymous
    }
}

/// The pool partition of a planned sub-resource fetch, computed from its
/// parts without materialising a [`FetchRequest`] (which owns the path as a
/// heap `String`). Equivalent to
/// `partition_for(&FetchRequest::with_defaults(..).anonymous()?)` — the
/// allocation-free form the browser's visit fast path uses.
pub fn partition_for_planned(
    url_origin: &netsim_types::Origin,
    initiator: &netsim_types::Origin,
    destination: crate::request::RequestDestination,
    anonymous: bool,
) -> CredentialsPartition {
    let (_, credentials) =
        if anonymous { destination.anonymous_parameters() } else { destination.default_parameters() };
    let included = match credentials {
        CredentialsMode::Include => true,
        CredentialsMode::Omit => false,
        CredentialsMode::SameOrigin => url_origin == initiator,
    };
    if included {
        CredentialsPartition::Credentialed
    } else {
        CredentialsPartition::Anonymous
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestDestination;
    use netsim_types::{DomainName, Origin};

    fn o(host: &str) -> Origin {
        Origin::https(DomainName::literal(host))
    }

    #[test]
    fn navigation_is_credentialed() {
        let nav = FetchRequest::navigation(DomainName::literal("example.com"));
        assert!(includes_credentials(&nav));
        assert_eq!(partition_for(&nav), CredentialsPartition::Credentialed);
        assert!(partition_for(&nav).is_credentialed());
    }

    #[test]
    fn cross_origin_font_is_anonymous() {
        // The canonical CRED trigger: fonts.gstatic.com font fetched from a
        // page on another origin — CORS + same-origin credentials, which
        // cross-origin means "omit".
        let font = FetchRequest::with_defaults(
            o("fonts.gstatic.com"),
            "/s/roboto/v30/font.woff2",
            o("example.com"),
            RequestDestination::Font,
        );
        assert!(!includes_credentials(&font));
        assert_eq!(partition_for(&font), CredentialsPartition::Anonymous);
    }

    #[test]
    fn same_origin_font_keeps_credentials() {
        let font = FetchRequest::with_defaults(
            o("example.com"),
            "/fonts/brand.woff2",
            o("example.com"),
            RequestDestination::Font,
        );
        assert!(includes_credentials(&font));
    }

    #[test]
    fn cross_origin_nocors_image_keeps_credentials() {
        // Plain <img> to a third party: no-cors + include, so cookies go
        // along — this request shares the credentialed pool.
        let pixel = FetchRequest::with_defaults(
            o("www.facebook.com"),
            "/tr?id=pixel",
            o("example.com"),
            RequestDestination::Image,
        );
        assert!(includes_credentials(&pixel));
    }

    #[test]
    fn anonymous_script_is_partitioned_away() {
        let script = FetchRequest::with_defaults(
            o("cdn.example.com"),
            "/lib.js",
            o("example.com"),
            RequestDestination::Script,
        )
        .anonymous();
        assert!(!includes_credentials(&script));
        assert_eq!(partition_for(&script), CredentialsPartition::Anonymous);
    }

    #[test]
    fn explicit_omit_is_always_anonymous() {
        let mut xhr =
            FetchRequest::with_defaults(o("example.com"), "/api", o("example.com"), RequestDestination::Xhr);
        xhr.credentials = CredentialsMode::Omit;
        assert!(!includes_credentials(&xhr));
    }
}
