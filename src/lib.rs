//! # connreuse
//!
//! A reproduction of **"Sharding and HTTP/2 Connection Reuse Revisited: Why
//! Are There Still Redundant Connections?"** (Sander, Blöcher, Wehrle, Rüth —
//! ACM IMC 2021) as a Rust workspace: the measurement substrates (DNS,
//! TLS/PKI, HTTP/2, the Fetch Standard, a Chromium-like browser, the
//! HTTP-Archive HAR pipeline, a synthetic web population), the paper's
//! redundancy classifier and attribution analyses, the Appendix-A.4 DNS
//! probe, and an experiment harness that regenerates every table and figure.
//!
//! This crate is a facade: it re-exports the workspace crates under stable
//! module names and provides a couple of convenience entry points used by the
//! examples.
//!
//! ```
//! use connreuse::prelude::*;
//! use connreuse::core::DatasetSummary;
//!
//! // Generate a tiny Alexa-like population, crawl it like the paper's own
//! // measurement, and classify the redundant connections.
//! let env = PopulationBuilder::new(PopulationProfile::alexa(), 25, 7).build();
//! let report = Crawler::new("Alexa", BrowserConfig::alexa_measurement(), 7).crawl(&env);
//! let dataset = dataset_from_crawl(&report);
//! let summary = DatasetSummary::from_classifications(
//!     "Alexa",
//!     &classify_dataset(&dataset, DurationModel::Recorded),
//! );
//! assert!(summary.redundant_site_share() > 0.5);
//! ```

pub use connreuse_core as core;
pub use connreuse_executor as executor;
pub use connreuse_experiments as experiments;
pub use connreuse_probe as probe;
pub use netsim_asdb as asdb;
pub use netsim_browser as browser;
pub use netsim_cost as cost;
pub use netsim_dns as dns;
pub use netsim_fetch as fetch;
pub use netsim_h2 as h2;
pub use netsim_har as har;
pub use netsim_store as store;
pub use netsim_tls as tls;
pub use netsim_types as types;
pub use netsim_web as web;

/// The most commonly used items, re-exported flat for examples and quick
/// experiments.
pub mod prelude {
    pub use connreuse_core::{
        classify_dataset, classify_site, dataset_from_crawl, dataset_from_har, Cause, CdfSeries, Dataset,
        DatasetSummary, DurationModel, SiteObservation,
    };
    pub use connreuse_experiments::{
        run_atlas, run_cost, run_sweep, AtlasConfig, AtlasReport, CostConfig, CostReport, SweepConfig,
        SweepReport,
    };
    pub use connreuse_probe::{default_pairs, DomainPair, ProbeConfig, ProbeExperiment};
    pub use netsim_browser::{Browser, BrowserConfig, Crawler, PageVisit, VisitScratch};
    pub use netsim_cost::{CostTotals, LinkProfile, VisitTimeline};
    pub use netsim_har::{ArchivePipeline, InconsistencyConfig};
    pub use netsim_types::{DomainName, Duration, Instant, Mitigation, MitigationSet, SimClock, SimRng};
    pub use netsim_web::{PopulationBuilder, PopulationProfile, WebEnvironment};
}

/// Run a small end-to-end analysis: generate a population with `sites` sites
/// from `profile`, crawl it with the stock-Chromium configuration and return
/// the classified summary (recorded connection durations).
pub fn quick_analysis(
    profile: netsim_web::PopulationProfile,
    sites: usize,
    seed: u64,
) -> connreuse_core::DatasetSummary {
    use prelude::*;
    let env = PopulationBuilder::new(profile, sites, seed).build();
    let report = Crawler::new("quick", BrowserConfig::alexa_measurement(), seed).crawl(&env);
    let dataset = dataset_from_crawl(&report);
    let classifications = classify_dataset(&dataset, DurationModel::Recorded);
    DatasetSummary::from_classifications("quick", &classifications)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_analysis_produces_redundancy() {
        let summary = quick_analysis(netsim_web::PopulationProfile::alexa(), 30, 11);
        assert_eq!(summary.total.sites, 30);
        assert!(summary.redundant.connections > 0);
        assert!(summary.cause(core::Cause::Ip).connections >= summary.cause(core::Cause::Cert).connections);
    }
}
