#!/usr/bin/env bash
# Bench-regression guard: compare a fresh `connreuse-atlas --bench-json`
# record against the committed baseline and fail on a large throughput
# regression.
#
#   scripts/bench_guard.sh [BASELINE_JSON] [FRESH_JSON]
#
# Defaults: BENCH_atlas.json (the committed full-run baseline) vs
# ci-artifacts/BENCH_atlas.json (what the CI atlas smoke step just wrote).
# The guard compares the `sites_per_second` field and fails when the fresh
# run falls below BENCH_GUARD_MIN_RATIO (default 0.75, i.e. a >25 %
# regression) of the baseline. Quick runs crawl a small population with the
# same per-site pipeline, so their throughput is comparable to — usually
# above — the committed full-run figure; a drop past the floor means the
# per-visit hot path got materially slower.
#
# Override the floor for noisy environments:
#   BENCH_GUARD_MIN_RATIO=0.5 scripts/bench_guard.sh
set -euo pipefail

baseline="${1:-BENCH_atlas.json}"
fresh="${2:-ci-artifacts/BENCH_atlas.json}"
min_ratio="${BENCH_GUARD_MIN_RATIO:-0.75}"

extract_sites_per_second() {
    # Pull the numeric value of "sites_per_second" out of a (possibly
    # pretty-printed) JSON record without requiring jq.
    sed -n 's/.*"sites_per_second"[[:space:]]*:[[:space:]]*\([0-9.eE+-]*\).*/\1/p' "$1" | head -n 1
}

for file in "$baseline" "$fresh"; do
    if [ ! -f "$file" ]; then
        echo "bench guard: missing $file" >&2
        exit 1
    fi
done

base_value=$(extract_sites_per_second "$baseline")
fresh_value=$(extract_sites_per_second "$fresh")
if [ -z "$base_value" ] || [ -z "$fresh_value" ]; then
    echo "bench guard: could not extract sites_per_second from $baseline / $fresh" >&2
    exit 1
fi

awk -v base="$base_value" -v fresh="$fresh_value" -v min="$min_ratio" 'BEGIN {
    if (base <= 0) {
        printf "bench guard: baseline sites_per_second is %s — nothing to compare\n", base
        exit 1
    }
    ratio = fresh / base
    printf "bench guard: fresh %.1f sites/s vs baseline %.1f sites/s (ratio %.2f, floor %.2f)\n",
        fresh, base, ratio, min
    if (ratio < min) {
        printf "bench guard: throughput regression beyond the %.0f%% floor — investigate before merging\n",
            (1 - min) * 100
        exit 1
    }
}'
