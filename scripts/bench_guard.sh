#!/usr/bin/env bash
# Bench-regression guard: compare a fresh `connreuse-atlas --bench-json`
# file against the committed baseline and fail on a large throughput
# regression, a broken parallel executor, or a blown per-stage budget.
#
#   scripts/bench_guard.sh [BASELINE_JSON] [FRESH_JSON] [STAGE_BUDGETS] [STAGE_PROFILE]
#
# Defaults: BENCH_atlas.json (the committed baseline) vs
# ci-artifacts/BENCH_atlas.json (what the CI atlas smoke step just wrote).
# Both files are schema-2 `BenchFile`s holding one record per run; legacy
# schema-1 single-record files parse the same way. A baseline with a *newer*
# schema than the guard understands makes it skip with a note (exit 0)
# rather than fail opaquely mid-extraction. Records are paired by
# *role*, not by exact thread count (CI runners and the baseline machine
# rarely agree on core counts):
#
#   serial   — the first record with threads == 1
#   parallel — the record with the highest threads > 1 (if any)
#
# Three throughput checks plus the stage check:
#
#   1. Serial throughput: fresh serial sites/s must stay above
#      BENCH_GUARD_MIN_RATIO (default 0.75, i.e. a >25 % regression fails)
#      of the baseline serial figure. Quick runs crawl a small population
#      with the same per-site pipeline, so their throughput is comparable
#      to — usually above — the committed full-run figure.
#   2. The baseline must carry a parallel record at all: the committed
#      multi-thread data point is part of the perf contract.
#   3. Parallel speedup: if the fresh file has a parallel record, its
#      sites/s divided by the fresh serial sites/s must reach
#      BENCH_GUARD_MIN_SPEEDUP. The default floor adapts to the machine the
#      fresh run used (its `available_cores` field): >= 2 cores demand a
#      real speedup (1.15); a single core only guards against pathological
#      scheduler overhead (0.5).
#   4. Per-stage budgets: when both the committed budget file (default
#      BENCH_stages.json) and a fresh stage profile (default
#      ci-artifacts/PROFILE_atlas.json, from `connreuse-atlas --profile-json`
#      on a `--features hotpath-profile` build) exist, every budgeted
#      stage's share of the measured total must stay under its `max_share`.
#      A violation fails the guard *naming the stage*, so a regression says
#      "dns-walk blew its budget" rather than just "the run got slower".
#      Skipped with a note when the fresh profile is absent (feature-off
#      builds record nothing).
#
# Override the floors for noisy environments:
#   BENCH_GUARD_MIN_RATIO=0.5 BENCH_GUARD_MIN_SPEEDUP=1.0 scripts/bench_guard.sh
set -euo pipefail

baseline="${1:-BENCH_atlas.json}"
fresh="${2:-ci-artifacts/BENCH_atlas.json}"
stage_budgets="${3:-BENCH_stages.json}"
stage_profile="${4:-ci-artifacts/PROFILE_atlas.json}"
min_ratio="${BENCH_GUARD_MIN_RATIO:-0.75}"
min_speedup="${BENCH_GUARD_MIN_SPEEDUP:-}"

for file in "$baseline" "$fresh"; do
    if [ ! -f "$file" ]; then
        echo "bench guard: missing $file" >&2
        exit 1
    fi
done

# A baseline written by a *newer* tool than this guard understands would
# push garbage through the field extraction below and fail with an opaque
# "could not extract" error. Detect the schema bump up front and skip
# cleanly instead: the guard is the thing that is out of date, not the run.
known_schema=2
baseline_schema=$(sed -e 's/,/\n/g' -e 's/[{}]/\n/g' "$baseline" | awk '
    /"schema"[[:space:]]*:/ { value = $0; gsub(/[^0-9]/, "", value); print value; exit }')
if [ -n "$baseline_schema" ] && [ "$baseline_schema" -gt "$known_schema" ]; then
    echo "bench guard: $baseline carries schema $baseline_schema, newer than schema $known_schema this guard understands"
    echo "bench guard: skipping the comparison — teach scripts/bench_guard.sh the new schema to re-enable it"
    exit 0
fi

# Emit one line per record: "<threads> <available_cores> <sites_per_second>".
# Field order inside a record is fixed by the serializer (threads and
# available_cores precede sites_per_second); available_cores defaults to 0
# for legacy records that lack it.
extract_records() {
    sed -e 's/,/\n/g' -e 's/[{}]/\n/g' "$1" | awk '
        /"threads"[[:space:]]*:/ { value = $0; gsub(/[^0-9]/, "", value); threads = value }
        /"available_cores"[[:space:]]*:/ { value = $0; gsub(/[^0-9]/, "", value); cores = value }
        /"sites_per_second"[[:space:]]*:/ {
            value = $0
            sub(/.*"sites_per_second"[[:space:]]*:[[:space:]]*/, "", value)
            gsub(/[^0-9.eE+-]/, "", value)
            print threads, (cores == "" ? 0 : cores), value
            cores = ""
        }'
}

# Print the sites/s of one role from a record list: role "serial" = first
# threads==1 record, role "parallel" = highest-thread-count record with
# threads > 1. Prints nothing when the role is absent.
pick_role() {
    local records="$1" role="$2"
    echo "$records" | awk -v role="$role" '
        role == "serial" && $1 == 1 && !found { print $3; found = 1 }
        role == "parallel" && $1 > 1 && $1 > best { best = $1; line = $3 }
        END { if (role == "parallel" && best > 0) print line }'
}

base_records=$(extract_records "$baseline")
fresh_records=$(extract_records "$fresh")

base_serial=$(pick_role "$base_records" serial)
base_parallel=$(pick_role "$base_records" parallel)
fresh_serial=$(pick_role "$fresh_records" serial)
fresh_parallel=$(pick_role "$fresh_records" parallel)
fresh_cores=$(echo "$fresh_records" | awk 'NR == 1 { print $2 }')

if [ -z "$base_serial" ] || [ -z "$fresh_serial" ]; then
    echo "bench guard: could not extract a serial (threads=1) record from $baseline / $fresh" >&2
    exit 1
fi

# Check 2: the committed baseline carries the multi-thread record.
if [ -z "$base_parallel" ]; then
    echo "bench guard: $baseline has no parallel (threads>1) record — the committed baseline" >&2
    echo "bench guard: must include the multi-thread data point (run --bench-threads 1,8)" >&2
    exit 1
fi

# Check 1: serial throughput ratio.
awk -v base="$base_serial" -v fresh="$fresh_serial" -v min="$min_ratio" 'BEGIN {
    if (base <= 0) {
        printf "bench guard: baseline serial sites_per_second is %s — nothing to compare\n", base
        exit 1
    }
    ratio = fresh / base
    printf "bench guard: serial fresh %.1f sites/s vs baseline %.1f sites/s (ratio %.2f, floor %.2f)\n",
        fresh, base, ratio, min
    if (ratio < min) {
        printf "bench guard: serial throughput regression beyond the %.0f%% floor — investigate before merging\n",
            (1 - min) * 100
        exit 1
    }
}'

# Check 4: named per-stage budgets (runs here so its verdicts appear even
# when the speedup check below exits early). Both inputs are flat JSON; the
# same sed-split/awk idiom as extract_records pulls "stage" + max_share out
# of the budget file and "stage" + share out of the fresh profile.
extract_stage_pairs() {
    local file="$1" field="$2"
    sed -e 's/,/\n/g' -e 's/[{}]/\n/g' "$file" | awk -v field="$field" '
        /"stage"[[:space:]]*:/ {
            value = $0
            sub(/.*"stage"[[:space:]]*:[[:space:]]*"/, "", value)
            sub(/".*/, "", value)
            stage = value
        }
        $0 ~ "\"" field "\"[[:space:]]*:" {
            value = $0
            sub(/.*"[[:space:]]*:[[:space:]]*/, "", value)
            gsub(/[^0-9.eE+-]/, "", value)
            if (stage != "") { print stage, value; stage = "" }
        }'
}

if [ ! -f "$stage_budgets" ]; then
    echo "bench guard: no stage budget file ($stage_budgets) — stage check skipped"
elif [ ! -f "$stage_profile" ]; then
    echo "bench guard: no fresh stage profile ($stage_profile) — stage check skipped"
    echo "bench guard: (profiles come from 'connreuse-atlas --profile-json' on a --features hotpath-profile build)"
else
    budget_pairs=$(extract_stage_pairs "$stage_budgets" max_share)
    share_pairs=$(extract_stage_pairs "$stage_profile" share)
    if [ -z "$share_pairs" ]; then
        echo "bench guard: $stage_profile carries no stage records — stage check skipped"
    else
        printf '%s\n%s\n' "BUDGETS" "$budget_pairs" > /tmp/bench_guard_stages.$$
        printf '%s\n%s\n' "SHARES" "$share_pairs" >> /tmp/bench_guard_stages.$$
        awk '
            $1 == "BUDGETS" { section = "budget"; next }
            $1 == "SHARES" { section = "share"; next }
            NF == 2 && section == "budget" { budget[$1] = $2 }
            NF == 2 && section == "share" { share[$1] = $2 }
            END {
                failed = 0
                for (stage in budget) {
                    if (!(stage in share)) {
                        printf "bench guard: stage %-14s no fresh record (did not run) — skipped\n", stage
                        continue
                    }
                    over = (share[stage] + 0 > budget[stage] + 0)
                    printf "bench guard: stage %-14s share %5.1f%% (budget %5.1f%%)%s\n",
                        stage, share[stage] * 100, budget[stage] * 100, over ? "  << OVER BUDGET" : ""
                    if (over) failed = 1
                }
                if (failed) {
                    print "bench guard: a stage blew its share budget — the named stage is where the time went"
                    exit 1
                }
            }' /tmp/bench_guard_stages.$$ || status=$?
        rm -f /tmp/bench_guard_stages.$$
        if [ "${status:-0}" -ne 0 ]; then
            exit "${status}"
        fi
    fi
fi

# Check 3: parallel speedup of the fresh run (skipped when the fresh file
# was not produced with --bench-threads).
if [ -z "$fresh_parallel" ]; then
    echo "bench guard: fresh file has no parallel record — speedup check skipped"
    exit 0
fi
if [ -z "$min_speedup" ]; then
    if [ "${fresh_cores:-0}" -ge 2 ]; then
        min_speedup=1.15
    else
        min_speedup=0.5
    fi
fi
awk -v serial="$fresh_serial" -v parallel="$fresh_parallel" -v min="$min_speedup" \
    -v cores="${fresh_cores:-0}" 'BEGIN {
    if (serial <= 0) {
        printf "bench guard: fresh serial sites_per_second is %s — nothing to compare\n", serial
        exit 1
    }
    speedup = parallel / serial
    printf "bench guard: parallel speedup %.2fx over serial on %d core(s) (floor %.2f)\n",
        speedup, cores, min
    if (speedup < min) {
        printf "bench guard: parallel executor below the %.2fx speedup floor — investigate before merging\n",
            min
        exit 1
    }
}'
