//! Reproduce the Appendix-A.4 DNS probe: resolve the top `IP`-cause domain
//! pairs through 14 public resolvers every six minutes and report how often
//! the answers overlap — i.e. how often Connection Reuse would have had a
//! chance.
//!
//! ```text
//! cargo run --example dns_probe --release
//! ```

use connreuse::prelude::*;

fn main() {
    // The probe only needs the authoritative DNS of the simulated web; a
    // minimal population installs the whole third-party catalog.
    let env = PopulationBuilder::new(PopulationProfile::alexa(), 5, 1).build();

    let config = ProbeConfig {
        interval: Duration::from_mins(6),
        duration: Duration::from_days(1),
        pairs: default_pairs(),
    };
    let experiment = ProbeExperiment::new(config);
    println!(
        "probing {} domain pairs through {} resolvers for one simulated day (6-minute interval)...",
        experiment.config().pairs.len(),
        experiment.panel().len()
    );
    let matrix = experiment.run(&env.authority);

    println!();
    println!("{:<58}  {:>12}  {:>18}", "pair", "mean overlap", "slots with overlap");
    println!("{}  {}  {}", "-".repeat(58), "-".repeat(12), "-".repeat(18));
    let mut indices: Vec<usize> = (0..matrix.pairs.len()).collect();
    indices.sort_by(|&a, &b| {
        matrix.mean_overlap(b).partial_cmp(&matrix.mean_overlap(a)).unwrap_or(std::cmp::Ordering::Equal)
    });
    for index in indices {
        println!(
            "{:<58}  {:>12.1}  {:>17.0} %",
            matrix.pairs[index].label(),
            matrix.mean_overlap(index),
            matrix.any_overlap_share(index) * 100.0
        );
    }

    println!();
    println!(
        "as in the paper's Figure 3, whether two co-hosted domains resolve to the same address \
         depends on the resolver and fluctuates over time — unsynchronized load balancing keeps \
         defeating RFC 7540 connection coalescing."
    );
}
