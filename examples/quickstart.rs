//! Quickstart: generate a small web population, crawl it like the paper's
//! own Chromium measurement, classify the redundant HTTP/2 connections and
//! print a Table-1-style summary.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use connreuse::core::DatasetSummary;
use connreuse::prelude::*;

fn main() {
    let sites = 400;
    let seed = 42;

    println!("generating an Alexa-like population of {sites} sites (seed {seed})...");
    let env = PopulationBuilder::new(PopulationProfile::alexa(), sites, seed).build();
    println!(
        "  {} sites, {} planned requests, {} certificates, {} DNS names",
        env.site_count(),
        env.total_planned_requests(),
        env.certificates.len(),
        env.authority.name_count()
    );

    println!("crawling with the stock Chromium configuration (Fetch credentials respected)...");
    let report = Crawler::new("Alexa", BrowserConfig::alexa_measurement(), seed).with_threads(4).crawl(&env);
    println!(
        "  {} page visits, {} HTTP/2 connections, {} requests",
        report.site_count(),
        report.total_connections(),
        report.total_requests()
    );

    println!("classifying redundant connections (RFC 7540 §9.1.1 reuse analysis)...");
    let dataset = dataset_from_crawl(&report);
    let classifications = classify_dataset(&dataset, DurationModel::Recorded);
    let summary = DatasetSummary::from_classifications("Alexa", &classifications);

    println!();
    println!("cause      sites affected   connections affected");
    println!("---------  ---------------  --------------------");
    for cause in Cause::ALL {
        let counts = summary.cause(cause);
        println!(
            "{:<9}  {:>6} ({:>4.0} %)   {:>7} ({:>4.1} %)",
            cause.label(),
            counts.sites,
            summary.site_share(cause) * 100.0,
            counts.connections,
            summary.connection_share(cause) * 100.0
        );
    }
    println!(
        "redundant  {:>6} ({:>4.0} %)   {:>7} ({:>4.1} %)",
        summary.redundant.sites,
        summary.redundant_site_share() * 100.0,
        summary.redundant.connections,
        summary.redundant_connection_share() * 100.0
    );
    println!("total      {:>6}            {:>7}", summary.total.sites, summary.total.connections);

    let series = CdfSeries::from_classifications("Alexa", &classifications, 15);
    println!();
    println!(
        "half of all sites open at least {} redundant connections (paper: ~6 for the Alexa top list)",
        series.median()
    );
}
