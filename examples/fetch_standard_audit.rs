//! Reproduce the paper's §5.3.3 experiment: crawl the same sites twice, once
//! with stock Chromium and once with the Fetch Standard's credentials flag
//! ("privacy mode") ignored, and measure how much redundancy disappears.
//!
//! The paper finds that the CRED cause vanishes completely and total
//! redundancy drops by roughly 25 %.
//!
//! ```text
//! cargo run --example fetch_standard_audit --release
//! ```

use connreuse::core::DatasetSummary;
use connreuse::prelude::*;

fn summarize(label: &str, env: &WebEnvironment, config: BrowserConfig, seed: u64) -> DatasetSummary {
    let report = Crawler::new(label, config, seed).with_threads(4).crawl(env);
    let dataset = dataset_from_crawl(&report);
    DatasetSummary::from_classifications(label, &classify_dataset(&dataset, DurationModel::Recorded))
}

fn main() {
    let sites = 400;
    let seed = 20_210_420;
    println!("building the population once; crawling it under two browser configurations...");
    let env = PopulationBuilder::new(PopulationProfile::alexa(), sites, seed).build();

    let stock = summarize("stock Chromium", &env, BrowserConfig::alexa_measurement(), seed);
    let patched = summarize("Chromium w/o Fetch flag", &env, BrowserConfig::alexa_without_fetch(), seed);

    println!();
    println!("metric                              stock      w/o Fetch flag");
    println!("----------------------------------  ---------  --------------");
    println!(
        "connections opened                  {:>9}  {:>14}",
        stock.total.connections, patched.total.connections
    );
    println!(
        "redundant connections               {:>9}  {:>14}",
        stock.redundant.connections, patched.redundant.connections
    );
    for cause in Cause::ALL {
        println!(
            "  of cause {:<4}                     {:>9}  {:>14}",
            cause.label(),
            stock.cause(cause).connections,
            patched.cause(cause).connections
        );
    }
    println!(
        "sites with redundancy               {:>8.0} %  {:>13.0} %",
        stock.redundant_site_share() * 100.0,
        patched.redundant_site_share() * 100.0
    );

    let reduction = 1.0 - patched.redundant.connections as f64 / stock.redundant.connections.max(1) as f64;
    println!();
    println!(
        "ignoring the Fetch credentials flag removes the CRED cause entirely and reduces \
         redundant connections by {:.0} % (paper: ~25 %)",
        reduction * 100.0
    );
    assert_eq!(patched.cause(Cause::Cred).connections, 0, "CRED must vanish without the Fetch flag");
}
