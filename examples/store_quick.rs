//! Build a small persistent shard store, answer what-if queries from it
//! without re-crawling, and show the incremental rebuild doing nothing.
//!
//! ```text
//! cargo run --release --example store_quick
//! ```

use connreuse::experiments::{answer_query, build_store, open_store, StoreConfig, StoreQuery};

fn main() {
    let config = StoreConfig::quick();
    let dir = std::env::temp_dir().join(format!("connreuse-store-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // First build crawls every chunk once and persists one shard per chunk.
    let report = build_store(&config, &dir).expect("build store");
    println!("{}", report.render());

    // A second build over the same configuration finds nothing to do.
    let again = build_store(&config, &dir).expect("rebuild store");
    println!(
        "rebuild: {} rewritten, {} reused — the store is a cache of pure functions\n",
        again.rewritten, again.reused
    );

    // What-ifs fold straight from disk; no site is crawled again.
    let store = open_store(&config, &dir).expect("open store");
    for text in [
        "mitigations=none",
        "mitigations=all profile=lossy-cellular",
        &format!("mitigations=all ranks=0..{}", config.chunk_sites),
    ] {
        let query = StoreQuery::parse(text, &config).expect("parse query");
        let answer = answer_query(&store, &config, &query).expect("answer query");
        println!("{}", answer.render(&config));
    }

    std::fs::remove_dir_all(&dir).expect("clean up");
}
