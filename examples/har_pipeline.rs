//! Reproduce the HTTP-Archive side of the methodology (§4.2.1 / §4.3): load
//! every landing page three times, keep the HAR of the median load, inject
//! the corpus' logging defects, filter them the way the analysis has to, and
//! compare the redundancy picture under the "endless" and "immediate"
//! connection-duration bounds.
//!
//! ```text
//! cargo run --example har_pipeline --release
//! ```

use connreuse::core::DatasetSummary;
use connreuse::prelude::*;

fn main() {
    let sites = 300;
    let seed = 7;
    println!("generating an HTTP-Archive-like population of {sites} sites...");
    let env = PopulationBuilder::new(PopulationProfile::archive(), sites, seed).build();

    println!("running the archive pipeline (3 loads per site, median HAR, defect injection)...");
    let mut corpus = ArchivePipeline::new(seed).with_threads(4).run(&env);
    let stats = corpus.filter();

    println!();
    println!("HAR filter statistics (cf. §4.3):");
    println!("  total entries          {:>8}", stats.total_entries);
    println!("  HTTP/1 entries         {:>8}", stats.http1);
    println!("  HTTP/3 entries         {:>8}", stats.http3);
    println!("  socket id 0            {:>8}", stats.zero_socket_id);
    println!("  missing certificate    {:>8}", stats.missing_certificate);
    println!("  missing IP             {:>8}", stats.missing_ip);
    println!("  invalid method         {:>8}", stats.invalid_method);
    println!("  retained HTTP/2        {:>8}", stats.retained_http2);
    println!(
        "  dropped share          {:>7.1} %",
        stats.dropped() as f64 / stats.total_entries as f64 * 100.0
    );

    // One document as JSON, to show the captured format.
    let sample = &corpus.documents[0];
    println!();
    println!(
        "sample HAR document for {} ({} entries, {} bytes of JSON)",
        sample.landing_domain().map(|d| d.to_string()).unwrap_or_default(),
        sample.entries.len(),
        sample.to_json().len()
    );

    println!();
    println!("classifying under both duration bounds (HAR files carry no connection end times):");
    let dataset = dataset_from_har(&corpus, "HAR");
    for model in [DurationModel::Endless, DurationModel::Immediate] {
        let summary = DatasetSummary::from_classifications("HAR", &classify_dataset(&dataset, model));
        println!(
            "  {:?}: {} of {} sites ({:.0} %) open redundant connections; causes IP={} CRED={} CERT={}",
            model,
            summary.redundant.sites,
            summary.total.sites,
            summary.redundant_site_share() * 100.0,
            summary.cause(Cause::Ip).connections,
            summary.cause(Cause::Cred).connections,
            summary.cause(Cause::Cert).connections
        );
    }
    println!();
    println!("the paper brackets the truth between those two bounds (76 % vs 38 % of sites).");
}
