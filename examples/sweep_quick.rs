//! Run the 2^4 mitigation what-if matrix on a small population and print the
//! comparison report, plus the headline numbers the sweep exposes.
//!
//! ```text
//! cargo run --release --example sweep_quick
//! ```

use connreuse::prelude::*;

fn main() {
    let config = SweepConfig::quick();
    let report = run_sweep(&config);
    println!("{}", report.render());

    println!("headline (share of the measured web's connections avoided):");
    for mitigation in Mitigation::ALL {
        println!(
            "  {:<13} solo {:>5.1} %   marginal {:>5.1} %",
            mitigation.label(),
            report.solo_savings(mitigation) * 100.0,
            report.marginal_savings(mitigation) * 100.0
        );
    }
    println!(
        "  {:<13} combined {:>5.1} % ({} connections avoided)",
        "ALL",
        report.combined_savings() * 100.0,
        report.connections_saved(MitigationSet::all())
    );
}
