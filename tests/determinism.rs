//! Workspace smoke test: the whole pipeline — population generation, crawl,
//! classification — must be a pure function of the seed. This guards the
//! `SimRng` / `SimClock` substrate every experiment depends on: if any
//! subsystem starts consuming ambient entropy (hash-map iteration order,
//! wall-clock time, thread interleavings), this test catches it.

use connreuse::prelude::*;
use connreuse::quick_analysis;

#[test]
fn quick_analysis_is_deterministic_across_runs() {
    let first = quick_analysis(PopulationProfile::alexa(), 30, 11);
    let second = quick_analysis(PopulationProfile::alexa(), 30, 11);
    assert_eq!(first, second, "same profile + seed must reproduce the identical summary");
}

#[test]
fn quick_analysis_depends_on_the_seed() {
    let a = quick_analysis(PopulationProfile::alexa(), 30, 11);
    let b = quick_analysis(PopulationProfile::alexa(), 30, 12);
    assert_ne!(a, b, "different seeds should explore different populations");
}

#[test]
fn deterministic_across_profiles() {
    for profile in [PopulationProfile::alexa(), PopulationProfile::archive()] {
        let first = quick_analysis(profile.clone(), 20, 7);
        let second = quick_analysis(profile, 20, 7);
        assert_eq!(first, second);
    }
}
