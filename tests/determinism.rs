//! Workspace smoke test: the whole pipeline — population generation, crawl,
//! classification — must be a pure function of the seed. This guards the
//! `SimRng` / `SimClock` substrate every experiment depends on: if any
//! subsystem starts consuming ambient entropy (hash-map iteration order,
//! wall-clock time, thread interleavings), this test catches it.

use connreuse::experiments::{
    run_atlas, run_cost, run_fleet, run_store, AtlasConfig, CostConfig, FleetConfig, Scenario,
    ScenarioConfig, StoreConfig,
};
use connreuse::prelude::*;
use connreuse::quick_analysis;

#[test]
fn quick_analysis_is_deterministic_across_runs() {
    let first = quick_analysis(PopulationProfile::alexa(), 30, 11);
    let second = quick_analysis(PopulationProfile::alexa(), 30, 11);
    assert_eq!(first, second, "same profile + seed must reproduce the identical summary");
}

#[test]
fn quick_analysis_depends_on_the_seed() {
    let a = quick_analysis(PopulationProfile::alexa(), 30, 11);
    let b = quick_analysis(PopulationProfile::alexa(), 30, 12);
    assert_ne!(a, b, "different seeds should explore different populations");
}

#[test]
fn deterministic_across_profiles() {
    for profile in [PopulationProfile::alexa(), PopulationProfile::archive()] {
        let first = quick_analysis(profile.clone(), 20, 7);
        let second = quick_analysis(profile, 20, 7);
        assert_eq!(first, second);
    }
}

/// A scenario built with one worker thread and with eight must yield
/// byte-identical datasets: parallelism shards the work, never the RNG
/// streams (which are forked per site, not per thread).
#[test]
fn scenario_datasets_are_thread_count_invariant() {
    let config = ScenarioConfig {
        archive_sites: 60,
        alexa_sites: 40,
        overlap_sites: 24,
        seed: 20_210_420,
        threads: 1,
    };
    let sequential = Scenario::build(config);
    let parallel = Scenario::build(ScenarioConfig { threads: 8, ..config });
    assert_eq!(sequential.har, parallel.har);
    assert_eq!(sequential.har_filter_statistics, parallel.har_filter_statistics);
    assert_eq!(sequential.alexa, parallel.alexa);
    assert_eq!(sequential.alexa_without_fetch, parallel.alexa_without_fetch);
    assert_eq!(sequential.overlap_har, parallel.overlap_har);
    assert_eq!(sequential.overlap_alexa, parallel.overlap_alexa);
}

/// The atlas engine generates, crawls and classifies its population in
/// chunks sharded across worker threads. The chunk layout is fixed by the
/// config (never by the worker count) and every RNG stream forks off the
/// global site index, so the classified summary *and* the rendered report
/// must be byte-identical for `threads = 1` and `threads = 8`.
#[test]
fn atlas_reports_are_thread_count_invariant() {
    let config = AtlasConfig { sites: 120, chunk_sites: 24, seed: 11, threads: 1, zipf_exponent: 0.35 };
    let sequential = run_atlas(&config);
    let parallel = run_atlas(&AtlasConfig { threads: 8, ..config });
    assert_eq!(sequential.summary, parallel.summary);
    assert_eq!(sequential.requests, parallel.requests);
    assert_eq!(sequential.planned_requests, parallel.planned_requests);
    assert_eq!(sequential.cost, parallel.cost, "cost totals must be thread-count invariant");
    assert_eq!(
        sequential.render(),
        parallel.render(),
        "rendered atlas reports must be byte-identical across thread counts"
    );
    // And the atlas is seed-sensitive like every other pipeline.
    let other_seed = run_atlas(&AtlasConfig { seed: 12, threads: 8, ..config });
    assert_ne!(sequential.summary, other_seed.summary);
}

/// The million-site configuration, pinned at CI size through a **prefix
/// run**: `AtlasConfig::million_prefix(n)` keeps the million run's seed,
/// chunk size and Zipf mix and truncates the population to its first `n`
/// sites — so these chunks are byte-for-byte the first chunks of the real
/// 1 M crawl (chunk layout and per-site RNG streams depend only on the
/// global site index, never on the population size). The work-stealing
/// executor must produce the identical report for threads ∈ {1, 2, 8}.
#[test]
fn million_config_prefix_is_thread_count_invariant() {
    let prefix = AtlasConfig::million_prefix(6_000);
    assert_eq!(prefix.chunk_sites, AtlasConfig::million().chunk_sites);
    let reference = run_atlas(&AtlasConfig { threads: 1, ..prefix });
    assert_eq!(reference.observed_sites, 6_000);
    assert_eq!(reference.chunk_count, 3);
    for threads in [2, 8] {
        let parallel = run_atlas(&AtlasConfig { threads, ..prefix });
        assert_eq!(reference.summary, parallel.summary, "summary diverged at threads={threads}");
        assert_eq!(reference.cost, parallel.cost, "cost totals diverged at threads={threads}");
        assert_eq!(
            reference.render(),
            parallel.render(),
            "rendered 1M-prefix reports must be byte-identical at threads={threads}"
        );
    }
}

/// The cost sweep shards its 16 mitigation cells (each crawled under three
/// link profiles) across worker threads; the per-visit timelines are folded
/// into per-cell totals and merged, so the aggregated cells *and* the
/// rendered report must be byte-identical for `threads = 1` and
/// `threads = 8`.
#[test]
fn cost_reports_are_thread_count_invariant() {
    let sequential = run_cost(&CostConfig { sites: 30, seed: 11, threads: 1 });
    let parallel = run_cost(&CostConfig { sites: 30, seed: 11, threads: 8 });
    assert_eq!(sequential.cells, parallel.cells);
    assert_eq!(
        sequential.render(),
        parallel.render(),
        "rendered cost reports must be byte-identical across thread counts"
    );
    // And the cost pipeline is seed-sensitive like every other one.
    let other_seed = run_cost(&CostConfig { sites: 30, seed: 12, threads: 8 });
    assert_ne!(sequential.cells, other_seed.cells);
}

/// The fleet drives stateful multi-page sessions (warm connection pool, TLS
/// tickets, session DNS cache) and shards its 29 cells across worker
/// threads. Session state makes this the hardest determinism surface in the
/// workspace: every navigation and lifetime draw forks off the global
/// session index, so the cells *and* the rendered report must be
/// byte-identical for `threads = 1` and `threads = 8`.
#[test]
fn fleet_reports_are_thread_count_invariant() {
    let sequential = run_fleet(&FleetConfig { sites: 24, sessions: 10, seed: 11, threads: 1 });
    let parallel = run_fleet(&FleetConfig { sites: 24, sessions: 10, seed: 11, threads: 8 });
    assert_eq!(sequential.cells, parallel.cells);
    assert_eq!(
        sequential.render(),
        parallel.render(),
        "rendered fleet reports must be byte-identical across thread counts"
    );
    // And the fleet is seed-sensitive like every other pipeline.
    let other_seed = run_fleet(&FleetConfig { sites: 24, sessions: 10, seed: 12, threads: 8 });
    assert_ne!(sequential.cells, other_seed.cells);
}

/// The mitigation sweep shards its 16 cells across worker threads; the
/// report (structure *and* rendered text) must not depend on the shard
/// layout.
#[test]
fn sweep_reports_are_thread_count_invariant() {
    let sequential = run_sweep(&SweepConfig { sites: 40, seed: 11, threads: 1 });
    let parallel = run_sweep(&SweepConfig { sites: 40, seed: 11, threads: 8 });
    assert_eq!(sequential.cells, parallel.cells);
    assert_eq!(sequential.render(), parallel.render(), "rendered reports must be byte-identical");
    // And the sweep itself is seed-sensitive like every other pipeline.
    let other_seed = run_sweep(&SweepConfig { sites: 40, seed: 12, threads: 8 });
    assert_ne!(sequential.cells, other_seed.cells);
}

/// The shard store extends the determinism contract to disk: building the
/// same configuration at different thread counts (and channel bounds) must
/// produce **byte-identical store directories**, and the answers folded from
/// them must render byte-identically too.
#[test]
fn store_directories_are_thread_count_invariant() {
    let base = StoreConfig {
        sites: 30,
        chunk_sites: 10,
        seed: 11,
        threads: 1,
        mitigations: StoreConfig::demo_mitigations(),
        ..StoreConfig::default()
    };
    let dir_serial = std::env::temp_dir().join(format!("connreuse-det-store-1-{}", std::process::id()));
    let dir_parallel = std::env::temp_dir().join(format!("connreuse-det-store-8-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir_serial);
    let _ = std::fs::remove_dir_all(&dir_parallel);

    let queries = base.demo_queries();
    let sequential = run_store(&base, &dir_serial, &queries).expect("serial build");
    let parallel =
        run_store(&StoreConfig { threads: 8, channel_capacity: 1, ..base.clone() }, &dir_parallel, &queries)
            .expect("parallel build");

    for entry in std::fs::read_dir(dir_serial.join("shards")).expect("shards dir") {
        let name = entry.expect("entry").file_name();
        let a = std::fs::read(dir_serial.join("shards").join(&name)).expect("serial shard");
        let b = std::fs::read(dir_parallel.join("shards").join(&name)).expect("parallel shard");
        assert_eq!(a, b, "shard {name:?} bytes differ between thread counts");
    }
    let a = std::fs::read(dir_serial.join("MANIFEST.json")).expect("serial manifest");
    let b = std::fs::read(dir_parallel.join("MANIFEST.json")).expect("parallel manifest");
    assert_eq!(a, b, "manifest bytes differ between thread counts");

    for (answer_a, answer_b) in sequential.answers.iter().zip(&parallel.answers) {
        assert_eq!(answer_a, answer_b);
        assert_eq!(answer_a.render(&base), answer_b.render(&base));
    }

    std::fs::remove_dir_all(&dir_serial).unwrap();
    std::fs::remove_dir_all(&dir_parallel).unwrap();
}
