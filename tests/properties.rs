//! Property-based tests (proptest) on the core data structures and the
//! classifier invariants.

use connreuse::browser::{
    Browser, BrowserConfig, ConnectionDurationModel, ConnectionPool, FaultProfile, PoolConfig, UserSession,
    VisitScratch,
};
use connreuse::core::{
    classify_site, Cause, DurationModel, ObservedConnection, ObservedRequest, SiteObservation,
};
use connreuse::cost::{CostTotals, LinkProfile, VisitTimeline};
use connreuse::dns::{LoadBalancePolicy, QueryContext, ResolverId, Vantage};
use connreuse::experiments::{run_cost, CostConfig, CostReport};
use connreuse::h2::hpack::HpackContext;
use connreuse::h2::reuse::{evaluate, ReusePolicy};
use connreuse::h2::{CloseReason, Connection, ConnectionState, Settings};
use connreuse::tls::{Certificate, CertificateId, CertificateStore, IssuancePolicy, Issuer, SanEntry};
use connreuse::types::{
    ConnectionId, DomainName, Duration, Instant, IpAddr, Mitigation, MitigationSet, Origin, SimClock, SimRng,
};
use connreuse::web::{PopulationBuilder, PopulationProfile};
use proptest::prelude::*;

/// A small universe of domains so that random SAN lists actually cover some
/// of the randomly chosen connection domains.
fn domain_universe() -> Vec<DomainName> {
    [
        "example.com",
        "www.example.com",
        "img.example.com",
        "static.example.com",
        "cdn.other.net",
        "tracker.ads.org",
        "fonts.provider.io",
    ]
    .iter()
    .map(|s| DomainName::literal(s))
    .collect()
}

prop_compose! {
    /// A random observed connection drawn from small universes of domains,
    /// addresses and SAN subsets.
    fn arbitrary_connection(id: u64)(
        domain_index in 0usize..7,
        ip_index in 0u8..4,
        san_mask in 0u8..128,
        start in 0u64..10_000,
        close_offset in proptest::option::of(1_000u64..200_000),
        status in prop_oneof![Just(200u16), Just(200u16), Just(200u16), Just(404u16)],
    ) -> ObservedConnection {
        let universe = domain_universe();
        let domain = universe[domain_index];
        let mut san: Vec<SanEntry> = universe
            .iter()
            .enumerate()
            .filter(|(index, _)| san_mask & (1 << index) != 0)
            .map(|(_, d)| SanEntry::Dns(*d))
            .collect();
        // The certificate always covers the domain it was served for.
        san.push(SanEntry::Dns(domain));
        ObservedConnection {
            id: ConnectionId(id),
            initial_domain: domain,
            ip: IpAddr::new(192, 0, 2, ip_index),
            port: 443,
            san,
            issuer: Issuer::lets_encrypt(),
            established_at: Instant::from_millis(start),
            closed_at: close_offset.map(|offset| Instant::from_millis(start + offset)),
            requests: vec![ObservedRequest {
                domain,
                status,
                started_at: Instant::from_millis(start + 5),
            }],
        }
    }
}

fn arbitrary_site(max_connections: usize) -> impl Strategy<Value = SiteObservation> {
    prop::collection::vec(any::<u8>(), 1..=max_connections).prop_flat_map(|seeds| {
        let strategies: Vec<_> =
            seeds.iter().enumerate().map(|(i, _)| arbitrary_connection(i as u64)).collect();
        strategies.prop_map(|connections| SiteObservation {
            site: DomainName::literal("site.example"),
            connections,
        })
    })
}

/// Build an established HTTP/2 connection for the reuse-monotonicity
/// property: a certificate over a SAN subset of the universe (always
/// covering the initial domain), an optional announced origin set, a remote
/// address and a credentials partition.
fn reuse_connection(
    domain_index: usize,
    san_mask: u8,
    ip_index: u8,
    credentialed: bool,
    origin_set_mask: Option<u8>,
) -> Connection {
    let universe = domain_universe();
    let mut names: Vec<DomainName> = universe
        .iter()
        .enumerate()
        .filter(|(index, _)| san_mask & (1 << index) != 0)
        .map(|(_, d)| *d)
        .collect();
    let initial = universe[domain_index];
    if !names.contains(&initial) {
        names.push(initial);
    }
    let mut store = CertificateStore::new();
    let ids =
        store.issue_with_policy(Issuer::lets_encrypt(), &IssuancePolicy::SharedSan, &names, Instant::EPOCH);
    let mut connection = Connection::establish(
        ConnectionId(1),
        Origin::https(initial),
        IpAddr::new(192, 0, 2, ip_index),
        std::sync::Arc::clone(store.get_arc(ids[0]).unwrap()),
        credentialed,
        Instant::EPOCH,
        Settings::default(),
    );
    if let Some(mask) = origin_set_mask {
        // An arbitrary announced set — deliberately not tied to the
        // certificate, so the property covers misconfigured servers too.
        let set = universe.iter().enumerate().filter(|(index, _)| mask & (1 << index) != 0).map(|(_, d)| *d);
        connection.receive_origin_set(set);
    }
    connection
}

/// The shared cost-sweep report the cost-monotonicity property samples from
/// (built once; the property then probes random grid edges).
fn cost_report() -> &'static CostReport {
    use std::sync::OnceLock;
    static REPORT: OnceLock<CostReport> = OnceLock::new();
    REPORT.get_or_init(|| run_cost(&CostConfig { sites: 40, seed: 20_210_420, threads: 8 }))
}

proptest! {
    /// For every mitigation set, total simulated setup cost is monotonically
    /// non-increasing as mitigations are added — the cost mirror of the
    /// reuse-monotonicity property below. Sampled over every edge of the
    /// 2^4 grid under every link profile: adding mitigation `m` to
    /// combination `S ∌ m` never increases handshake round trips, handshake
    /// octets, charged handshake latency, cold-window rounds or the priced
    /// setup time.
    #[test]
    fn simulated_cost_is_monotone_under_mitigation(
        combo_bits in 0usize..16,
        mitigation_index in 0usize..4,
        profile_index in 0usize..3,
    ) {
        let report = cost_report();
        let combo = MitigationSet::all_combinations()[combo_bits];
        let mitigation = Mitigation::ALL[mitigation_index];
        if !combo.contains(mitigation) {
            let profile = &report.profiles[profile_index];
            let without = &report.cell(profile_index, combo).totals;
            let with = &report.cell(profile_index, combo.with(mitigation)).totals;
            prop_assert!(
                with.sums.setup_rtts() <= without.sums.setup_rtts(),
                "adding {mitigation} to {combo} raised setup RTTs on {}",
                profile.name
            );
            prop_assert!(with.sums.handshake_octets <= without.sums.handshake_octets);
            prop_assert!(with.sums.handshake_millis <= without.sums.handshake_millis);
            prop_assert!(with.sums.cold_cwnd_rtts <= without.sums.cold_cwnd_rtts);
            prop_assert!(with.setup_time(profile) <= without.setup_time(profile));
        }
    }

    /// Pricing is monotone in the counters: growing any cost counter never
    /// makes the derived setup time cheaper, on any link profile.
    #[test]
    fn cost_pricing_is_monotone_in_the_counters(
        rtts in 0u64..100_000,
        octets in 0u64..1_000_000_000,
        queries in 0u64..100_000,
        cwnd in 0u64..100_000,
        extra in 1u64..50_000,
        profile_index in 0usize..3,
    ) {
        let profile = &LinkProfile::presets()[profile_index];
        let base_timeline = VisitTimeline {
            handshake_rtts: rtts,
            handshake_octets: octets,
            dns_authority_queries: queries,
            cold_cwnd_rtts: cwnd,
            ..VisitTimeline::default()
        };
        let mut base = CostTotals::new();
        base.absorb_visit(&base_timeline);
        for grown_timeline in [
            VisitTimeline { handshake_rtts: rtts + extra, ..base_timeline },
            VisitTimeline { dns_authority_queries: queries + extra, ..base_timeline },
            VisitTimeline { cold_cwnd_rtts: cwnd + extra, ..base_timeline },
        ] {
            let mut grown = CostTotals::new();
            grown.absorb_visit(&grown_timeline);
            prop_assert!(grown.setup_time(profile) > base.setup_time(profile));
        }
    }

    /// Relaxing a [`ReusePolicy`] by enabling any mitigation never
    /// introduces a *new* [`connreuse::h2::ReuseRefusal`] for any
    /// connection/request pair: for every mitigation set `S` and mitigation
    /// `m ∉ S`, `refusals(S ∪ {m}) ⊆ refusals(S)`. In particular a pair
    /// that was reusable stays reusable — reuse decisions are monotone
    /// under mitigation.
    #[test]
    fn reuse_decisions_are_monotone_under_mitigation(
        domain_index in 0usize..7,
        san_mask in 0u8..128,
        ip_index in 0u8..4,
        credentialed_bit in 0u8..2,
        origin_set_mask in proptest::option::of(0u8..128),
        target_index in 0usize..7,
        target_ip_index in 0u8..4,
        request_credentialed_bit in 0u8..2,
    ) {
        let credentialed = credentialed_bit == 1;
        let request_credentialed = request_credentialed_bit == 1;
        let connection =
            reuse_connection(domain_index, san_mask, ip_index, credentialed, origin_set_mask);
        let target = Origin::https(domain_universe()[target_index]);
        let target_ip = IpAddr::new(192, 0, 2, target_ip_index);
        for combo in MitigationSet::all_combinations() {
            let base = evaluate(
                &connection,
                &target,
                target_ip,
                request_credentialed,
                &ReusePolicy::with_mitigations(combo),
            );
            for mitigation in Mitigation::ALL {
                if combo.contains(mitigation) {
                    continue;
                }
                let relaxed = evaluate(
                    &connection,
                    &target,
                    target_ip,
                    request_credentialed,
                    &ReusePolicy::with_mitigations(combo.with(mitigation)),
                );
                for refusal in relaxed.refusals() {
                    prop_assert!(
                        base.refusals().contains(refusal),
                        "adding {mitigation} to {combo} introduced {refusal:?} \
                         (base {:?}, relaxed {:?})",
                        base.refusals(),
                        relaxed.refusals()
                    );
                }
                if base.is_reusable() {
                    prop_assert!(relaxed.is_reusable());
                }
            }
        }
    }

    /// Classifier invariants that must hold for any observation.
    #[test]
    fn classifier_invariants(site in arbitrary_site(8)) {
        for model in [DurationModel::Endless, DurationModel::Immediate, DurationModel::Recorded] {
            let result = classify_site(&site, model);
            prop_assert_eq!(result.total_connections, site.connections.len());
            prop_assert_eq!(result.connections.len(), site.connections.len());
            // The first-established connection can never be redundant.
            if let Some(first) = result.connections.first() {
                prop_assert!(!first.is_redundant());
            }
            prop_assert!(result.redundant_connections() < site.connections.len().max(1));
            for (position, connection) in result.connections.iter().enumerate() {
                for cause in Cause::ALL {
                    for &previous in connection.previous_for(cause) {
                        prop_assert!(previous < site.connections.len());
                        // Previous connections were established no later.
                        let this = &site.connections[connection.index];
                        let other = &site.connections[previous];
                        prop_assert!(other.established_at <= this.established_at);
                    }
                }
                // A single previous connection cannot justify both CERT and
                // CRED for the same new connection (they are mutually
                // exclusive per pair: the certificate either covers or not).
                let cert: std::collections::BTreeSet<_> =
                    connection.previous_for(Cause::Cert).iter().collect();
                let cred: std::collections::BTreeSet<_> =
                    connection.previous_for(Cause::Cred).iter().collect();
                // Exception: the same-initial-domain corner case routes an
                // IP-mismatched pair to CRED; such a pair can never be in CERT
                // because the certificate always covers its own domain.
                prop_assert!(cert.is_disjoint(&cred), "position {position}: {cert:?} vs {cred:?}");
            }
        }
    }

    /// Endless is an upper bound of Immediate for every cause.
    #[test]
    fn endless_dominates_immediate(site in arbitrary_site(8)) {
        let endless = classify_site(&site, DurationModel::Endless);
        let immediate = classify_site(&site, DurationModel::Immediate);
        prop_assert!(endless.redundant_connections() >= immediate.redundant_connections());
        for cause in Cause::ALL {
            prop_assert!(endless.connections_with_cause(cause) >= immediate.connections_with_cause(cause));
        }
    }

    /// Removing close times (Recorded with no closures == Endless).
    #[test]
    fn recorded_without_closures_equals_endless(site in arbitrary_site(6)) {
        let mut open_site = site;
        for connection in &mut open_site.connections {
            connection.closed_at = None;
        }
        let endless = classify_site(&open_site, DurationModel::Endless);
        let recorded = classify_site(&open_site, DurationModel::Recorded);
        prop_assert_eq!(endless, recorded);
    }

    /// SAN coverage: a wildcard certificate covers exactly the single-label
    /// children of its zone, never the zone itself or deeper names.
    #[test]
    fn wildcard_coverage_is_single_label(label in "[a-z]{1,10}", deeper in "[a-z]{1,8}") {
        let zone = DomainName::literal("shard.example.com");
        let certificate = Certificate {
            id: CertificateId(1),
            subject: zone,
            san: vec![SanEntry::Wildcard(zone)],
            issuer: Issuer::lets_encrypt(),
            not_before: Instant::EPOCH,
            not_after: Instant::EPOCH + Duration::from_days(90),
        };
        let child = zone.with_subdomain(&label).unwrap();
        let grandchild = child.with_subdomain(&deeper).unwrap();
        prop_assert!(certificate.covers(&child));
        prop_assert!(!certificate.covers(&zone));
        prop_assert!(!certificate.covers(&grandchild));
    }

    /// DNS load-balancing answers always come from the configured pool, are
    /// deterministic within an epoch, and never exceed the requested size.
    #[test]
    fn load_balancing_answers_stay_in_pool(
        pool_size in 1u8..16,
        answer_size in 0usize..8,
        resolver in 0u32..20,
        minutes in 0u64..5_000,
        domain_index in 0usize..7,
    ) {
        let pool: Vec<IpAddr> = (0..pool_size).map(|i| IpAddr::new(10, 7, 0, i)).collect();
        let policy = LoadBalancePolicy::PerResolverPool {
            pool: pool.clone(),
            answer_size,
            epoch: Duration::from_mins(30),
        };
        let domain = domain_universe()[domain_index];
        let ctx = QueryContext::new(
            ResolverId(resolver),
            Vantage::Europe,
            Instant::EPOCH + Duration::from_mins(minutes),
        );
        let answer = policy.select(&domain, &ctx);
        prop_assert!(!answer.is_empty());
        prop_assert!(answer.len() <= pool.len());
        prop_assert!(answer.iter().all(|ip| pool.contains(ip)));
        prop_assert_eq!(answer.clone(), policy.select(&domain, &ctx));
    }

    /// A warm session never opens *more* connections than the same pages
    /// visited cold. With server churn disabled and a pool roomy enough to
    /// avoid eviction, every reuse candidate the cold path sees is also
    /// available warm (plus the pooled survivors), and both paths start each
    /// page at the same epoch-aligned instant — so the warm candidate set is
    /// a superset of the cold one, page by page.
    #[test]
    fn warm_sessions_never_open_more_connections_than_cold(
        seed in 0u64..150,
        pages in prop::collection::vec(0usize..6, 2usize..6),
    ) {
        let env = PopulationBuilder::new(PopulationProfile::alexa(), 6, seed).build();
        // No server lifetime churn: the pool keeps everything it absorbs.
        let config = BrowserConfig {
            duration_model: ConnectionDurationModel::KeepOpen,
            ..BrowserConfig::alexa_measurement()
        };
        // Pages start at fixed 60 s marks; the whole trace stays inside one
        // 10-minute DNS load-balancer epoch, so cached answers never diverge
        // from fresh ones.
        let page_start = |index: usize| Instant::EPOCH + Duration::from_secs(60 * index as u64);
        let mut scratch = VisitScratch::without_netlog();

        let mut cold_opens = 0u64;
        {
            let mut browser = Browser::with_id_base(config.clone(), 0);
            let mut rng = SimRng::new(seed).fork("cold");
            for (index, &site) in pages.iter().enumerate() {
                let mut clock = SimClock::starting_at(page_start(index));
                browser.load_page_into(&mut scratch, &env, &env.sites[site], &mut clock, &mut rng);
                cold_opens += scratch.timeline().connections_opened;
            }
        }

        let mut warm_opens = 0u64;
        {
            let pool = PoolConfig { max_connections: 256, idle_timeout: Duration::from_secs(600) };
            let mut session = UserSession::new(pool);
            let mut browser = Browser::with_id_base(config, 0);
            let mut rng = SimRng::new(seed).fork("warm");
            let mut clock = SimClock::new();
            for (index, &site) in pages.iter().enumerate() {
                clock.advance_to(page_start(index));
                browser.load_session_page_into(
                    &mut scratch, &mut session, &env, &env.sites[site], &mut clock, &mut rng,
                );
                warm_opens += scratch.timeline().connections_opened;
            }
            session.end(&mut scratch, clock.now());
        }

        prop_assert!(
            warm_opens <= cold_opens,
            "warm sessions opened {warm_opens} connections where cold visits opened {cold_opens} \
             (seed {seed}, pages {pages:?})"
        );
    }

    /// The pool never lends a stale connection. For any absorbed set, idle
    /// timeout, lend gap, churn model and dead-on-reuse rate: every
    /// connection handed to the page is still open within its idle deadline,
    /// everything else comes back as a closed shell with the right lifecycle
    /// reason (a server-lifetime close always lands inside the sampler's
    /// `0.5×..2×`-median window and never after the lend instant), and no
    /// connection is lost or duplicated on the way through.
    #[test]
    fn the_pool_never_lends_past_a_lifecycle_deadline(
        seed in 0u64..500,
        count in 1usize..12,
        idle_secs in 1u64..120,
        gap_ms in 0u64..300_000,
        close_ppm in 0u32..1_000_001,
        median_secs in 1u64..60,
        dead_ppm in prop_oneof![Just(0u32), Just(250_000u32), Just(1_000_000u32)],
    ) {
        let config = PoolConfig { max_connections: 64, idle_timeout: Duration::from_secs(idle_secs) };
        let mut pool = ConnectionPool::new(config);
        let mut store = CertificateStore::new();
        let mut connections: Vec<Connection> = (0..count)
            .map(|index| {
                let domain = DomainName::literal(&format!("host-{index}.pool.example"));
                let ids = store.issue_with_policy(
                    Issuer::lets_encrypt(),
                    &IssuancePolicy::SharedSan,
                    &[domain],
                    Instant::EPOCH,
                );
                Connection::establish(
                    ConnectionId(index as u64),
                    Origin::https(domain),
                    IpAddr::new(10, 9, 0, index as u8),
                    std::sync::Arc::clone(store.get_arc(ids[0]).unwrap()),
                    true,
                    Instant::EPOCH + Duration::from_millis(index as u64),
                    Settings::default(),
                )
            })
            .collect();

        let absorbed_at = Instant::EPOCH + Duration::from_secs(1);
        let churn = ConnectionDurationModel::IdleTimeouts {
            close_probability: close_ppm as f64 / 1_000_000.0,
            median_lifetime_secs: median_secs,
        };
        let mut absorb_shells = Vec::new();
        let mut rng = SimRng::new(seed);
        pool.absorb(absorbed_at, &mut connections, &mut absorb_shells, &mut rng, &churn);

        let lent_at = absorbed_at + Duration::from_millis(gap_ms);
        let faults = FaultProfile { dead_on_reuse_ppm: dead_ppm, ..FaultProfile::default() };
        let mut live = Vec::new();
        let mut lend_shells = Vec::new();
        let dead = pool.lend(lent_at, &mut live, &mut lend_shells, &faults, &mut rng.fork("fault"));

        // Conservation: every absorbed connection is either an absorb-time
        // churn shell, lent alive, or a lend-time shell — exactly once.
        prop_assert_eq!(absorb_shells.len() + live.len() + lend_shells.len(), count);
        let mut ids: Vec<u64> = absorb_shells
            .iter()
            .chain(&live)
            .chain(&lend_shells)
            .map(|connection| connection.id.0)
            .collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..count as u64).collect::<Vec<_>>());

        for connection in &live {
            prop_assert_eq!(connection.state, ConnectionState::Open);
            prop_assert!(connection.close_reason.is_none());
            // A lent connection is always within its idle deadline.
            prop_assert!(lent_at.since(absorbed_at) <= config.idle_timeout);
        }
        if gap_ms > idle_secs * 1_000 {
            prop_assert!(live.is_empty(), "nothing may be lent past the idle deadline");
        }
        if dead_ppm == 1_000_000 {
            prop_assert!(live.is_empty(), "a certain dead-on-reuse draw kills every survivor");
        }

        for shell in absorb_shells.iter().chain(&lend_shells) {
            let closed_at = shell.closed_at.expect("every shell records a close time");
            prop_assert!(closed_at <= lent_at);
            match shell.close_reason.expect("every shell records a close reason") {
                CloseReason::ServerLifetime => {
                    // The sampled expiry is anchored at establishment and
                    // spread 0.5×..2× the median; a connection is never lent
                    // at or past it.
                    let lifetime = closed_at.since(shell.established_at);
                    prop_assert!(lifetime >= Duration::from_millis(median_secs * 500));
                    prop_assert!(lifetime <= Duration::from_secs(median_secs * 2));
                }
                CloseReason::IdleTimeout => {
                    prop_assert_eq!(closed_at, absorbed_at + config.idle_timeout);
                    prop_assert!(lent_at.since(absorbed_at) > config.idle_timeout);
                }
                CloseReason::DeadOnReuse => {
                    prop_assert_eq!(closed_at, lent_at);
                    prop_assert!(dead_ppm > 0, "0 ppm must never draw a dead connection");
                }
                other => prop_assert!(false, "unexpected close reason {other:?}"),
            }
        }

        let stats = pool.stats();
        prop_assert_eq!(stats.inserted, count as u64);
        prop_assert_eq!(stats.lent, live.len() as u64);
        prop_assert_eq!(stats.dead_on_reuse, dead);
        prop_assert_eq!(
            dead as usize,
            lend_shells.iter().filter(|s| s.close_reason == Some(CloseReason::DeadOnReuse)).count()
        );
        prop_assert_eq!(stats.closed() + stats.lent, stats.inserted);
    }

    /// HPACK: the encoded block is never larger than the uncompressed header
    /// list plus per-field overhead, and repeated encoding monotonically
    /// improves the cumulative compression ratio.
    #[test]
    fn hpack_encoding_is_bounded_and_improves(path in "/[a-z0-9/]{0,40}", repeats in 1usize..12) {
        let headers = HpackContext::request_headers("www.example.com", &path, Some("sid=token"));
        let uncompressed: usize = headers.iter().map(|h| h.name.len() + h.value.len() + 4).sum();
        let mut ctx = HpackContext::default();
        let mut previous_ratio = f64::INFINITY;
        for _ in 0..repeats {
            let encoded = ctx.encode_block_size(&headers);
            prop_assert!(encoded > 0);
            prop_assert!(encoded <= uncompressed + headers.len());
            let ratio = ctx.compression_ratio();
            prop_assert!(ratio <= previous_ratio + 1e-9);
            previous_ratio = ratio;
        }
    }
}
