//! Golden-snapshot regression test for the experiment table.
//!
//! Every entry of `runner::EXPERIMENTS` is rendered under
//! `ScenarioConfig::quick()` and compared byte-for-byte against its snapshot
//! in `tests/golden/<name>.txt`. Any drift in the pipeline — population
//! generation, crawling, classification, rendering — shows up as a diff
//! here instead of silently changing the reproduced tables.
//!
//! To refresh the snapshots after an *intentional* change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_experiments
//! ```
//!
//! The quick scenario pins every seed and thread counts only shard the work
//! (see `tests/determinism.rs`), so the snapshots are machine-independent.

use connreuse::experiments::{run_experiment, Scenario, ScenarioConfig, EXPERIMENTS};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden").join(format!("{name}.txt"))
}

#[test]
fn every_experiment_matches_its_golden_snapshot() {
    let scenario = Scenario::build(ScenarioConfig::quick());
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let mut failures: Vec<String> = Vec::new();

    for name in EXPERIMENTS {
        let output = run_experiment(name, &scenario).unwrap_or_else(|e| panic!("{name}: {e}"));
        let path = golden_path(name);
        if update {
            std::fs::create_dir_all(path.parent().unwrap()).expect("create golden dir");
            std::fs::write(&path, &output.text).expect("write golden snapshot");
            continue;
        }
        match std::fs::read_to_string(&path) {
            Ok(expected) if expected == output.text => {}
            Ok(expected) => {
                let changed = expected
                    .lines()
                    .zip(output.text.lines())
                    .position(|(a, b)| a != b)
                    .map(|line| format!("first differing line {}", line + 1))
                    .unwrap_or_else(|| "differs in length".to_string());
                failures.push(format!("{name}: output drifted from snapshot ({changed})"));
            }
            Err(error) => failures.push(format!("{name}: cannot read {}: {error}", path.display())),
        }
    }

    assert!(
        failures.is_empty(),
        "experiment outputs drifted from tests/golden/ — if the change is intentional, \
         regenerate with `UPDATE_GOLDEN=1 cargo test --test golden_experiments`:\n{}",
        failures.join("\n")
    );
}
