//! End-to-end integration tests spanning the whole pipeline: population
//! generation → browser crawl → ingestion → classification → aggregation,
//! checking the structural findings the paper reports.

use connreuse::core::{attribution, DatasetSummary};
use connreuse::prelude::*;

fn build_and_crawl(
    profile: PopulationProfile,
    sites: usize,
    seed: u64,
    config: BrowserConfig,
) -> (WebEnvironment, Dataset) {
    let env = PopulationBuilder::new(profile, sites, seed).build();
    let report = Crawler::new("test", config, seed).with_threads(2).crawl(&env);
    let dataset = dataset_from_crawl(&report);
    (env, dataset)
}

#[test]
fn full_pipeline_reproduces_the_cause_ordering() {
    let (_env, dataset) =
        build_and_crawl(PopulationProfile::alexa(), 250, 1, BrowserConfig::alexa_measurement());
    let classifications = classify_dataset(&dataset, DurationModel::Recorded);
    let summary = DatasetSummary::from_classifications("alexa", &classifications);

    // The paper's qualitative findings: most sites are redundant, IP is the
    // leading cause by connections, CRED affects many sites but fewer
    // connections, CERT is the smallest contributor.
    assert!(summary.redundant_site_share() > 0.75, "redundant sites {:.2}", summary.redundant_site_share());
    assert!(summary.cause(Cause::Ip).connections > summary.cause(Cause::Cred).connections);
    assert!(summary.cause(Cause::Cred).connections > summary.cause(Cause::Cert).connections);
    assert!(summary.site_share(Cause::Ip) > summary.site_share(Cause::Cert));
    assert!(summary.site_share(Cause::Cred) > summary.site_share(Cause::Cert));
    // Cause sums may exceed the redundant totals (multi-cause connections).
    let cause_connection_sum: usize = Cause::ALL.iter().map(|c| summary.cause(*c).connections).sum();
    assert!(cause_connection_sum >= summary.redundant.connections);
}

#[test]
fn patched_browser_removes_cred_and_reduces_redundancy() {
    let env = PopulationBuilder::new(PopulationProfile::alexa(), 200, 3).build();
    let stock = Crawler::new("stock", BrowserConfig::alexa_measurement(), 3).with_threads(2).crawl(&env);
    let patched =
        Crawler::new("patched", BrowserConfig::alexa_without_fetch(), 3).with_threads(2).crawl(&env);

    let stock_summary = DatasetSummary::from_classifications(
        "stock",
        &classify_dataset(&dataset_from_crawl(&stock), DurationModel::Recorded),
    );
    let patched_summary = DatasetSummary::from_classifications(
        "patched",
        &classify_dataset(&dataset_from_crawl(&patched), DurationModel::Recorded),
    );

    assert_eq!(patched_summary.cause(Cause::Cred).connections, 0);
    assert!(patched_summary.redundant.connections < stock_summary.redundant.connections);
    assert!(patched.total_connections() < stock.total_connections());
    // Other causes persist: the patch only addresses the Fetch partition.
    assert!(patched_summary.cause(Cause::Ip).connections > 0);
}

#[test]
fn attribution_points_at_the_services_the_paper_names() {
    let (env, dataset) =
        build_and_crawl(PopulationProfile::alexa(), 300, 5, BrowserConfig::alexa_measurement());
    let classifications = classify_dataset(&dataset, DurationModel::Recorded);

    let origins = attribution::top_origins_for_cause(&dataset, &classifications, Cause::Ip, 10);
    assert!(!origins.is_empty());
    let origin_names: Vec<String> = origins.iter().map(|o| o.origin.to_string()).collect();
    assert!(
        origin_names.iter().any(|n| n == "www.google-analytics.com" || n == "www.facebook.com"),
        "expected analytics or facebook among top IP origins, got {origin_names:?}"
    );

    let issuers = attribution::cert_issuers(&dataset, &classifications, 5);
    assert!(!issuers.is_empty());
    let issuer_names: Vec<&str> = issuers.iter().map(|row| row.issuer.organization()).collect();
    assert!(
        issuer_names.iter().any(|name| *name == "Let's Encrypt"
            || *name == "Google Trust Services"
            || *name == "DigiCert Inc"),
        "expected LE/GTS/DigiCert among the top CERT issuers, got {issuer_names:?}"
    );

    let ases = attribution::asn_for_ip_cause(&dataset, &classifications, &env.registry, 5);
    assert!(!ases.is_empty());
    assert!(
        ases.iter().any(|row| row.system.name == "GOOGLE" || row.system.name == "FACEBOOK"),
        "expected GOOGLE or FACEBOOK among top IP-cause ASes"
    );
}

#[test]
fn duration_models_are_ordered() {
    let (_env, dataset) =
        build_and_crawl(PopulationProfile::archive(), 200, 9, BrowserConfig::http_archive_crawler());
    let endless =
        DatasetSummary::from_classifications("endless", &classify_dataset(&dataset, DurationModel::Endless));
    let immediate = DatasetSummary::from_classifications(
        "immediate",
        &classify_dataset(&dataset, DurationModel::Immediate),
    );
    let recorded = DatasetSummary::from_classifications(
        "recorded",
        &classify_dataset(&dataset, DurationModel::Recorded),
    );
    // Endless is the upper bound; immediate the lower bound. The HTTP-Archive
    // crawl never records close times, so recorded == endless there.
    assert!(endless.redundant.connections >= immediate.redundant.connections);
    assert_eq!(endless.redundant.connections, recorded.redundant.connections);
    for cause in Cause::ALL {
        assert!(endless.cause(cause).connections >= immediate.cause(cause).connections);
    }
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let (_env, dataset) =
            build_and_crawl(PopulationProfile::alexa(), 60, 77, BrowserConfig::alexa_measurement());
        let classifications = classify_dataset(&dataset, DurationModel::Recorded);
        DatasetSummary::from_classifications("alexa", &classifications)
    };
    assert_eq!(run(), run());
}

#[test]
fn probe_and_crawl_agree_on_the_analytics_pair() {
    // If the probe says the analytics pair overlaps for some resolvers only,
    // the crawl must also show connection splits for that pair on some sites.
    let env = PopulationBuilder::new(PopulationProfile::alexa(), 200, 13).build();
    let probe = ProbeExperiment::new(ProbeConfig {
        interval: Duration::from_mins(30),
        duration: Duration::from_days(1),
        pairs: vec![DomainPair::new("www.google-analytics.com", "www.googletagmanager.com")],
    });
    let matrix = probe.run(&env.authority);
    let mean_overlap = matrix.mean_overlap(0);
    assert!(mean_overlap < 14.0, "pair should not always overlap (mean {mean_overlap})");

    // Space the visits out so the crawl covers several load-balancing epochs,
    // like the real multi-day measurement does.
    let config = BrowserConfig { visit_spacing_secs: 300, ..BrowserConfig::alexa_measurement() };
    let report = Crawler::new("alexa", config, 13).with_threads(2).crawl(&env);
    let dataset = dataset_from_crawl(&report);
    let classifications = classify_dataset(&dataset, DurationModel::Recorded);
    let origins = attribution::top_origins_for_cause(&dataset, &classifications, Cause::Ip, 30);
    assert!(
        origins.iter().any(|o| o.origin.as_str() == "www.google-analytics.com"),
        "analytics should appear among the IP-cause origins"
    );
}
