//! Property tests for the streaming aggregation layer: folding per-shard
//! `Accumulator`s and merging them — in any shard layout and any merge order
//! — must reproduce the batch pass byte-for-byte.

use connreuse::core::{Accumulator, Cause, ClassifiedConnection, DatasetSummary, SiteClassification};
use connreuse::types::DomainName;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Build one site classification from compact per-connection masks:
/// bit 0 = CERT, bit 1 = IP, bit 2 = CRED, bit 3 = excluded (421).
fn classification(site_index: usize, masks: &[u8]) -> SiteClassification {
    let site = DomainName::parse(&format!("prop-site-{site_index:03}.example")).expect("valid");
    let connections = masks
        .iter()
        .enumerate()
        .map(|(index, mask)| {
            let mut causes: BTreeMap<Cause, Vec<usize>> = BTreeMap::new();
            for (bit, cause) in [(0, Cause::Cert), (1, Cause::Ip), (2, Cause::Cred)] {
                if mask & (1 << bit) != 0 {
                    causes.insert(cause, vec![0]);
                }
            }
            ClassifiedConnection { index, origin: site, causes, excluded: mask & 8 != 0 }
        })
        .collect();
    SiteClassification { site, total_connections: masks.len(), connections }
}

prop_compose! {
    /// A random dataset: up to 24 sites, each with 0..6 connections carrying
    /// random cause/exclusion masks (zero-connection sites exercise the
    /// "outside the HTTP/2 population" branch).
    fn dataset()(per_site in prop::collection::vec(prop::collection::vec(0u8..16, 0usize..6), 1usize..24))
        -> Vec<SiteClassification> {
        per_site
            .iter()
            .enumerate()
            .map(|(index, masks)| classification(index, masks))
            .collect()
    }
}

/// Deterministically permute indices by a rotation + stride (enough to vary
/// merge order without needing a full shuffle strategy).
fn permuted(count: usize, rotation: usize, stride: usize) -> Vec<usize> {
    let stride = (stride % count).max(1);
    let stride = if gcd(stride, count) == 1 { stride } else { 1 };
    (0..count).map(|i| (rotation + i * stride) % count).collect()
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

proptest! {
    #[test]
    fn sharded_merge_in_any_order_equals_the_batch_pass(
        classifications in dataset(),
        shard_count in 1usize..6,
        rotation in 0usize..97,
        stride in 1usize..13,
    ) {
        let batch = DatasetSummary::from_classifications("prop", &classifications);

        // Shard round-robin, fold each shard independently.
        let mut shards: Vec<Accumulator> = (0..shard_count).map(|_| Accumulator::new()).collect();
        for (index, site) in classifications.iter().enumerate() {
            shards[index % shard_count].observe(site);
        }

        // Merge the shards in a permuted order.
        let mut merged = Accumulator::new();
        for shard_index in permuted(shard_count, rotation, stride) {
            merged.merge(&shards[shard_index]);
        }
        prop_assert_eq!(merged.observed_sites(), classifications.len());

        let streamed = merged.finish("prop");
        prop_assert_eq!(&streamed, &batch);
        // Byte-for-byte: the serialized reports are identical, not merely
        // structurally equal.
        prop_assert_eq!(
            serde_json::to_string(&streamed).expect("summary serializes"),
            serde_json::to_string(&batch).expect("summary serializes")
        );
    }

    #[test]
    fn merge_is_associative(
        classifications in dataset(),
        split_a in 1usize..97,
        split_b in 1usize..97,
    ) {
        // Partition into three shards at two random cut points.
        let len = classifications.len();
        let (low, high) = {
            let a = split_a % (len + 1);
            let b = split_b % (len + 1);
            (a.min(b), a.max(b))
        };
        let mut parts = [Accumulator::new(), Accumulator::new(), Accumulator::new()];
        for (index, site) in classifications.iter().enumerate() {
            let slot = if index < low { 0 } else if index < high { 1 } else { 2 };
            parts[slot].observe(site);
        }
        let [a, b, c] = parts;

        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);

        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);

        prop_assert_eq!(&left, &right);
        prop_assert_eq!(left.finish("prop"), right.finish("prop"));
    }
}
