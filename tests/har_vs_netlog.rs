//! Consistency between the two data paths the paper uses: NetLog-grade
//! browser captures and the HTTP-Archive HAR pipeline. When no logging
//! defects are injected, both must reconstruct the same session structure and
//! lead to the same classification.

use connreuse::core::DatasetSummary;
use connreuse::har::FilterStatistics;
use connreuse::prelude::*;

fn environment(sites: usize, seed: u64) -> WebEnvironment {
    PopulationBuilder::new(PopulationProfile::archive(), sites, seed).build()
}

#[test]
fn clean_har_and_netlog_classify_identically_under_endless() {
    let env = environment(120, 21);
    let config = BrowserConfig::http_archive_crawler();

    let report = Crawler::new("netlog", config.clone(), 5).with_threads(2).crawl(&env);
    let netlog_dataset = dataset_from_crawl(&report);

    let mut corpus = ArchivePipeline::new(5)
        .with_config(config)
        .with_inconsistencies(InconsistencyConfig::none())
        .with_threads(2)
        .run(&env);
    corpus.filter();
    let har_dataset = dataset_from_har(&corpus, "har");

    let netlog_summary = DatasetSummary::from_classifications(
        "netlog",
        &classify_dataset(&netlog_dataset, DurationModel::Endless),
    );
    let har_summary =
        DatasetSummary::from_classifications("har", &classify_dataset(&har_dataset, DurationModel::Endless));

    assert_eq!(netlog_summary.total, har_summary.total);
    assert_eq!(netlog_summary.redundant, har_summary.redundant);
    for cause in Cause::ALL {
        assert_eq!(netlog_summary.cause(cause), har_summary.cause(cause), "cause {cause} differs");
    }
}

#[test]
fn defect_injection_only_removes_information() {
    let env = environment(120, 22);
    let config = BrowserConfig::http_archive_crawler();

    let mut clean = ArchivePipeline::new(9)
        .with_config(config.clone())
        .with_inconsistencies(InconsistencyConfig::none())
        .with_threads(2)
        .run(&env);
    let clean_stats: FilterStatistics = clean.filter();

    let mut noisy = ArchivePipeline::new(9).with_config(config).with_threads(2).run(&env);
    let noisy_stats: FilterStatistics = noisy.filter();

    assert_eq!(clean_stats.dropped(), 0);
    assert!(noisy_stats.dropped() > 0);
    assert!(noisy_stats.retained_http2 <= clean_stats.retained_http2);

    // Conservative filtering can only shrink the analyzable dataset.
    let clean_dataset = dataset_from_har(&clean, "clean");
    let noisy_dataset = dataset_from_har(&noisy, "noisy");
    assert!(noisy_dataset.total_requests() <= clean_dataset.total_requests());
    assert!(noisy_dataset.total_connections() <= clean_dataset.total_connections());

    let clean_summary = DatasetSummary::from_classifications(
        "clean",
        &classify_dataset(&clean_dataset, DurationModel::Endless),
    );
    let noisy_summary = DatasetSummary::from_classifications(
        "noisy",
        &classify_dataset(&noisy_dataset, DurationModel::Endless),
    );
    assert!(noisy_summary.redundant.connections <= clean_summary.redundant.connections);
}

#[test]
fn har_json_roundtrip_preserves_the_classification() {
    let env = environment(40, 23);
    let mut corpus =
        ArchivePipeline::new(11).with_inconsistencies(InconsistencyConfig::none()).with_threads(2).run(&env);
    corpus.filter();

    // Serialise every document to JSON and parse it back, as an external
    // consumer of the corpus would.
    let reparsed: Vec<_> = corpus
        .documents
        .iter()
        .map(|document| connreuse::har::HarDocument::from_json(&document.to_json()).expect("valid JSON"))
        .collect();
    assert_eq!(reparsed, corpus.documents);

    let original = dataset_from_har(&corpus, "har");
    let mut roundtripped_corpus = corpus.clone();
    roundtripped_corpus.documents = reparsed;
    let roundtripped = dataset_from_har(&roundtripped_corpus, "har");
    let summary_a =
        DatasetSummary::from_classifications("har", &classify_dataset(&original, DurationModel::Endless));
    let summary_b =
        DatasetSummary::from_classifications("har", &classify_dataset(&roundtripped, DurationModel::Endless));
    assert_eq!(summary_a, summary_b);
}
